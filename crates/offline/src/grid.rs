//! Brute-force offline optimum on a discretized arena.
//!
//! Exhaustive dynamic programming over a regular grid: the state is the
//! server's grid cell, the transition allows every cell within the
//! movement limit. Exponential in the dimension — usable only on modest
//! instances, which is exactly its job: an independent oracle that
//! certifies the PWL and convex solvers in tests, and the denominator of
//! every measured competitive ratio off the line.
//!
//! The grid restricts OPT's positions, so [`grid_optimum`]` ≥ OPT`;
//! refining the grid converges from above. Tests compare solvers at
//! matching tolerances.
//!
//! # Transition kernels
//!
//! The DP's per-step relaxation `next[k] = min_j (base[j] + D·d(j,k))`
//! (over sources `j` within the movement reach; `base` is the frontier
//! cost, plus the service cost under Answer-First) is a pluggable
//! [`TransitionKernel`] — three implementations sharing one arena and one
//! set of allocation-free scratch buffers:
//!
//! * [`TransitionKernel::AllPairs`] — the `O(cells²)` scan over every
//!   (source, target) pair. The independent parity oracle and benchmark
//!   baseline; never the fast path.
//! * [`TransitionKernel::Windowed`] — the radius-pruned neighbor-window
//!   scan, `O(cells · windowᴺ)`: a move of length ≤ `reach` changes axis
//!   `i` by at most `⌈reach/hᵢ⌉` cells, and the exact distance check
//!   inside the window keeps the transition set *identical* to the
//!   all-pairs scan, so their results agree bit for bit.
//! * [`TransitionKernel::DistanceTransform`] — the SMAWK min-plus
//!   distance transform, `O(cells · windowᴺ⁻¹)`: axis 0 is swept in one
//!   pass per (target row, source row) pair by running the SMAWK
//!   row-minima reduction of Aggarwal et al. on the pair's candidate
//!   matrix `M[k][j] = base[j] + D·√((x_k−x_j)² + C²)` (C = the fixed
//!   rest-axis offset of the row pair), padded so reach-infeasible and
//!   dead entries preserve total monotonicity (the proof lives in the
//!   `dt_row` worker's rustdoc; `smawk`'s states the requirement).
//!   On the line (`N = 1`) the whole step collapses to a single
//!   `O(cells)` reduction — the totally-monotone-matrix discipline
//!   applied to the Euclidean (not squared) metric, replacing the PR 4
//!   prefix/suffix cone-envelope sweeps and their brute-scan fallbacks
//!   with one provably linear pass per pair.
//!
//!   **Exactness contract.** Feasibility is decided on squared
//!   distances against a precomputed threshold that reproduces the
//!   oracle's `d(j,k) ≤ reach` sqrt-compare bit for bit, and the
//!   candidate value of a SMAWK winner is evaluated with the oracle's
//!   own expression on the oracle's own coordinates, so the only
//!   divergence from [`TransitionKernel::AllPairs`] is tie-breaking
//!   among equal minima — the result is never *below* the oracle's and
//!   agrees within ~1e-12 relative (pinned by proptests in
//!   `tests/transition_kernels.rs`). A whole-pair improvement bound
//!   (cheapest row base plus the `D·C` rest-offset move against the
//!   frontier maximum) skips only pairs that cannot strictly improve
//!   any cell, preserving both properties. Arenas whose axis
//!   coordinates are not strictly increasing in `f64` (possible only for
//!   degenerate magnitudes where spacing falls under one ulp) are
//!   detected at construction and silently served by the windowed kernel
//!   instead.
//!
//! **DT rows fan out.** The distance-transform transition's target rows
//! are mutually independent (each reads the frozen frontier and writes
//! only its own `next` row), so the row loop fans out over the
//! [`msp_analysis::sweep`] persistent worker pool in contiguous chunks
//! with per-worker scratch ([`GridDp::set_row_threads`]; default: the
//! pool size, collapsing to one thread inside an outer sweep). The
//! chunking changes wall-clock only — the DP result is bit-identical for
//! every thread count, so the parity contracts above are unaffected.
//!
//! **Scratch is hoisted.** [`GridDp`] owns the arena (node positions in
//! array-of-structs, structure-of-arrays, and per-axis coordinate layout)
//! and every DP buffer, so repeated solves — all kernels, both serving
//! orders, δ-sweeps against one instance — are allocation-free after
//! construction, like the median solver. The per-step service costs are
//! filled by one **SoA scan per request**
//! ([`msp_geometry::soa::SoaPoints::service_costs_into`], vectorized over
//! the node columns) shared by every kernel, which accumulates in request
//! order — bit-identical per node to the scalar per-node loop it
//! replaced, so the windowed/all-pairs exact-equality contract is
//! preserved for every request count.
//!
//! **Warm incremental solves.** Sweeps that re-solve the same arena
//! against step-wise similar instances (prefix sweeps, perturbed
//! schedules) should use [`GridDp::solve_warm`]: it journals every
//! step's request bits, service costs, and post-step frontier, and on
//! the next solve fast-forwards over the longest step prefix whose
//! request bits are unchanged — the exactness guard is bit-level
//! equality of the inputs, so a warm solve is **bit-equal** to the cold
//! solve of the same instance (pinned by proptests). See the method
//! docs for the journal contract and its `O(horizon · cells)` memory
//! cost.

use msp_analysis::obs;
use msp_core::cost::ServingOrder;
use msp_core::model::Instance;
use msp_geometry::{Aabb, Point, SoaPoints};

/// Strategy for the grid DP's per-step transition relaxation
/// `next[k] = min_j (base[j] + D·d(j,k))`.
///
/// All kernels compute the same minima over the same transition set (every
/// source within the movement reach); they differ in how the minimum is
/// found and, consequently, in cost and in bit-level tie-breaking — see the
/// [module docs](self) for the exactness contract of each.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransitionKernel {
    /// Scan every (source, target) pair: `O(cells²)` per step. The parity
    /// oracle the other kernels are certified against.
    AllPairs,
    /// Radius-pruned neighbor-window scan: `O(cells · windowᴺ)` per step,
    /// bit-identical to [`TransitionKernel::AllPairs`].
    Windowed,
    /// Axis-swept lower-envelope distance transform:
    /// `O(cells · windowᴺ⁻¹)` per step (`O(cells)` on the line), never
    /// below and within ~1e-12 relative of the oracle. The default used
    /// by [`grid_optimum`].
    #[default]
    DistanceTransform,
}

impl TransitionKernel {
    /// Every kernel, oracle first — convenient for parity sweeps in tests.
    pub const ALL: [TransitionKernel; 3] = [
        TransitionKernel::AllPairs,
        TransitionKernel::Windowed,
        TransitionKernel::DistanceTransform,
    ];
}

/// Grid geometry shared by the transition kernels: node positions plus the
/// start-snap and movement slack described in [`grid_optimum`].
struct GridArena<const N: usize> {
    nodes: Vec<Point<N>>,
    /// The same nodes in structure-of-arrays layout, for the per-step
    /// service scan and the start-snap distance scan.
    nodes_soa: SoaPoints<N>,
    /// Per-axis node coordinates: the arena is the exact product
    /// `axis[0] × … × axis[N−1]` (axis 0 varies fastest), which is what
    /// lets the distance-transform kernel sweep one axis at a time.
    axis: [Vec<f64>; N],
    /// Whether every `axis` array is strictly increasing in `f64` — the
    /// precondition of the envelope sweep. False only for degenerate
    /// coordinate magnitudes; the DT kernel then falls back to Windowed.
    axes_strict: bool,
    /// Per-axis node spacing.
    spacing: [f64; N],
    /// Movement tolerance: `max_move` plus half a grid diagonal.
    reach: f64,
    /// Start-snap radius (half a grid diagonal).
    slack: f64,
}

/// Largest squared distance whose (correctly rounded) square root still
/// passes the oracle's `d ≤ reach` predicate — feasibility can then be
/// tested on squared distances, bit-faithfully to the oracle's
/// `sqrt`-then-compare. (IEEE `sqrt` is monotone, so the predicate is a
/// half-line in the squared value; the loops terminate within a few ulps
/// of `reach²`.)
fn sq_reach_threshold(reach: f64) -> f64 {
    let mut s = reach * reach;
    while s > 0.0 && s.sqrt() > reach {
        s = f64::from_bits(s.to_bits() - 1);
    }
    loop {
        let up = f64::from_bits(s.to_bits() + 1);
        if up.sqrt() <= reach {
            s = up;
        } else {
            break;
        }
    }
    s
}

fn build_arena<const N: usize>(instance: &Instance<N>, cells_per_axis: usize) -> GridArena<N> {
    assert!(cells_per_axis >= 2, "need at least 2 cells per axis");
    let cells = cells_per_axis.pow(N as u32);
    assert!(
        cells <= 200_000,
        "grid too large ({cells} cells); shrink the instance"
    );

    // Arena: bounding box of the start and every request, padded slightly
    // so boundary optima are representable.
    let mut bbox = Aabb::<N>::from_points(&[instance.start]);
    for step in &instance.steps {
        for v in &step.requests {
            bbox.insert(v);
        }
    }
    let pad = 0.5 * instance.max_move.max(1e-6);
    bbox = Aabb::from_corners(bbox.min - Point::splat(pad), bbox.max + Point::splat(pad));

    // Per-axis coordinates; the node set is their exact product.
    let axis: [Vec<f64>; N] = std::array::from_fn(|i| {
        (0..cells_per_axis)
            .map(|c| {
                let frac = c as f64 / (cells_per_axis - 1) as f64;
                bbox.min[i] + frac * (bbox.max[i] - bbox.min[i])
            })
            .collect()
    });
    let axes_strict = axis.iter().all(|a| a.windows(2).all(|w| w[0] < w[1]));

    // Enumerate grid nodes (axis 0 varies fastest).
    let mut nodes: Vec<Point<N>> = Vec::with_capacity(cells);
    let mut idx = [0usize; N];
    loop {
        let mut p = Point::<N>::origin();
        for i in 0..N {
            p[i] = axis[i][idx[i]];
        }
        nodes.push(p);
        // Odometer increment.
        let mut i = 0;
        loop {
            idx[i] += 1;
            if idx[i] < cells_per_axis {
                break;
            }
            idx[i] = 0;
            i += 1;
            if i == N {
                break;
            }
        }
        if i == N {
            break;
        }
    }

    // Movement tolerance: half a grid diagonal so the discretized path is
    // not starved by rounding.
    let mut spacing = [0.0f64; N];
    let mut diag2 = 0.0;
    for (i, s) in spacing.iter_mut().enumerate() {
        let h = (bbox.max[i] - bbox.min[i]) / (cells_per_axis - 1) as f64;
        *s = h;
        diag2 += h * h;
    }
    let slack = diag2.sqrt() * 0.51;
    let reach = instance.max_move + slack;

    let nodes_soa = SoaPoints::from_points(&nodes);
    GridArena {
        nodes,
        nodes_soa,
        axis,
        axes_strict,
        spacing,
        reach,
        slack,
    }
}

/// A reusable grid-DP solver: arena geometry and every DP buffer are
/// built once, so repeated solves against the same instance (all
/// [`TransitionKernel`]s, both serving orders, resolution studies over δ)
/// are allocation-free — the `MedianSolver` discipline applied to the
/// offline oracle.
///
/// One-shot pricing goes through [`grid_optimum`] /
/// [`grid_optimum_unpruned`]; sweeps solving repeatedly should hold a
/// `GridDp` and call [`GridDp::solve_with`].
pub struct GridDp<const N: usize> {
    arena: GridArena<N>,
    cells_per_axis: usize,
    /// Signature of the construction instance (start, `max_move`, `d`,
    /// horizon), used to catch mismatched solve calls in debug builds.
    built_for: (Point<N>, f64, f64, usize),
    /// DP cost of the current frontier, per node.
    cost: Vec<f64>,
    /// DP cost of the next frontier, per node.
    next: Vec<f64>,
    /// Per-node service cost of the current step.
    serve: Vec<f64>,
    /// Squared-distance scratch for the start snap.
    dist_sq: Vec<f64>,
    /// DT scratch: per-source transition base cost (`cost`, plus `serve`
    /// under Answer-First).
    base: Vec<f64>,
    /// DT scratch: per-row count of finite `base` entries — O(1)
    /// dead-row checks.
    row_live: Vec<u32>,
    /// DT scratch: per-row minimum of `base` (∞ for dead rows) — the
    /// whole-pair skip bound.
    row_min: Vec<f64>,
    /// Warm-solve journal for [`GridDp::solve_warm`] (empty until the
    /// first warm solve; [`GridDp::reset_warm`] clears it).
    warm: WarmJournal,
    /// DT scratch: one [`DtScratch`] per row-fan worker (grown lazily to
    /// the fan width; index 0 serves the sequential path).
    dt_scratch: Vec<DtScratch>,
    /// Worker threads for the per-target-row fan of the
    /// distance-transform transition (0 = the sweep pool size; nested
    /// inside another sweep everything runs on the current worker). See
    /// [`GridDp::set_row_threads`].
    row_threads: usize,
}

/// Per-worker scratch of the distance-transform row fan: everything one
/// target row needs beyond the shared read-only step context. Rows are
/// independent (each writes only its own `next` slice), so giving every
/// worker chunk its own scratch makes the fan embarrassingly parallel
/// while keeping the per-row arithmetic — and therefore the result —
/// bit-identical to the sequential sweep for any thread count.
struct DtScratch {
    /// The admissible (C², source row) pairs of one target row, sorted by
    /// ascending rest offset.
    pair_buf: Vec<(f64, usize)>,
    /// SMAWK column arena: survivor column indices of every live
    /// recursion level, stack-disciplined (each level appends its
    /// reduced columns and truncates them on return), so one flat `Vec`
    /// serves the whole recursion without per-level allocation.
    cols: Vec<u32>,
    /// Per-target argmin column written by the SMAWK reduction.
    argmin: Vec<u32>,
}

impl DtScratch {
    fn new(n0: usize) -> Self {
        DtScratch {
            pair_buf: Vec::new(),
            cols: Vec::with_capacity(2 * n0 + 4),
            argmin: vec![0; n0],
        }
    }
}

/// One journaled step of a warm solve: the request coordinates (as raw
/// bits — the exactness guard compares inputs bit-level), the step's
/// per-node service costs (a pure function of requests and arena, so
/// reusable whenever this step's bits match even after an earlier step
/// diverged), and the post-step frontier.
struct WarmStep {
    /// `N` coordinate bit patterns per request, flattened.
    req_bits: Vec<u64>,
    /// Per-node service cost of the step.
    serve: Vec<f64>,
    /// Per-node DP cost *after* this step's transition.
    frontier: Vec<f64>,
}

/// The warm-solve journal: a consistent chain of [`WarmStep`]s — entry
/// `t`'s frontier is the DP state after steps `0..=t` with exactly the
/// journaled request bits — valid only for one (serving order, resolved
/// kernel) pair, since kernels differ in tie-level bits.
#[derive(Default)]
struct WarmJournal {
    order: Option<(ServingOrder, TransitionKernel)>,
    steps: Vec<WarmStep>,
}

/// Flattened coordinate bit patterns of one step's requests (shared
/// with the probe's warm window cache).
pub(crate) fn step_req_bits<const N: usize>(requests: &[Point<N>]) -> Vec<u64> {
    let mut bits = Vec::with_capacity(requests.len() * N);
    for r in requests {
        for i in 0..N {
            bits.push(r[i].to_bits());
        }
    }
    bits
}

/// Whether `bits` is exactly the bit pattern of `requests`.
pub(crate) fn req_bits_match<const N: usize>(bits: &[u64], requests: &[Point<N>]) -> bool {
    bits.len() == requests.len() * N
        && requests
            .iter()
            .enumerate()
            .all(|(r, p)| (0..N).all(|i| bits[r * N + i] == p[i].to_bits()))
}

/// Read-only per-step context shared by every target row of one
/// distance-transform transition: the frozen DP inputs ([`GridDp`]
/// buffers filled by the sequential prologue) plus the arena geometry.
/// `Sync` by construction (shared references only), which is what lets
/// the row fan borrow it across workers.
struct DtStep<'a, const N: usize> {
    n0: usize,
    d: f64,
    /// Axis-0 node coordinates.
    x0: &'a [f64],
    axis: &'a [Vec<f64>; N],
    nodes: &'a [Point<N>],
    /// Per-source transition base cost (`cost`, plus `serve` under
    /// Answer-First).
    base: &'a [f64],
    /// Per-row count of finite `base` entries.
    live: &'a [u32],
    /// Per-row minimum of `base`.
    row_min: &'a [f64],
    window: &'a [usize; N],
    r2max: f64,
    r2win: f64,
}

impl<const N: usize> GridDp<N> {
    /// Builds the solver for `instance` on a `cells_per_axis`-per-axis
    /// grid. The solver is tied to this instance's arena — pass the same
    /// instance to [`GridDp::solve_with`].
    ///
    /// # Panics
    /// Panics when the grid would be degenerate (`cells_per_axis < 2`) or
    /// infeasibly large (> 200k cells) — this is a test oracle, not a
    /// solver.
    pub fn new(instance: &Instance<N>, cells_per_axis: usize) -> Self {
        let arena = build_arena(instance, cells_per_axis);
        let n = arena.nodes.len();
        let rows = n / cells_per_axis;
        GridDp {
            arena,
            cells_per_axis,
            built_for: (
                instance.start,
                instance.max_move,
                instance.d,
                instance.horizon(),
            ),
            cost: vec![0.0; n],
            next: vec![0.0; n],
            serve: vec![0.0; n],
            dist_sq: vec![0.0; n],
            base: vec![0.0; n],
            row_live: vec![0; rows],
            row_min: vec![0.0; rows],
            dt_scratch: vec![DtScratch::new(cells_per_axis)],
            row_threads: 0,
            warm: WarmJournal::default(),
        }
    }

    /// Sets the worker-thread request of the distance-transform kernel's
    /// per-target-row fan: `0` (the default) fans rows over the
    /// [`msp_analysis::sweep`] pool, `1` forces the sequential sweep, any
    /// other value requests that many workers (served by at most the
    /// pool). The fan changes wall-clock only — per-row arithmetic is
    /// independent of the chunking, so the DP result is **bit-identical**
    /// for every setting (pinned by tests), and solves nested inside
    /// another sweep collapse to one thread regardless.
    pub fn set_row_threads(&mut self, threads: usize) -> &mut Self {
        self.row_threads = threads;
        self
    }

    /// Debug-build guard against solving a different instance than the
    /// one the arena was derived from (a silent wrong answer otherwise).
    fn check_instance(&self, instance: &Instance<N>) {
        debug_assert!(
            self.built_for.0 == instance.start
                && self.built_for.1 == instance.max_move
                && self.built_for.2 == instance.d
                && self.built_for.3 == instance.horizon(),
            "GridDp solved against a different instance than it was built for"
        );
    }

    /// Initial DP costs: the server must begin at `start`, which may be
    /// off-grid — allow a free snap of at most `slack`.
    fn reset_initial_costs(&mut self, start: &Point<N>) {
        self.arena
            .nodes_soa
            .distances_sq_into(start, &mut self.dist_sq);
        let mut any = false;
        for (c, &d2) in self.cost.iter_mut().zip(&self.dist_sq) {
            if d2.sqrt() <= self.arena.slack {
                *c = 0.0;
                any = true;
            } else {
                *c = f64::INFINITY;
            }
        }
        if !any {
            // Extremely coarse grid: snap to the nearest node
            // unconditionally.
            let (j, _) = self
                .dist_sq
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            self.cost[j] = 0.0;
        }
    }

    /// Per-node service cost of one step: one blocked SoA scan over the
    /// node columns, accumulating requests in order (bit-identical per
    /// node to the scalar `Σ_r d(node, v_r)` loop). Shared by every
    /// kernel so their transition minima see the same values.
    fn fill_service_costs(&mut self, requests: &[Point<N>]) {
        self.arena
            .nodes_soa
            .service_costs_into(requests, &mut self.serve);
    }

    /// Per-axis neighbor window: a move of length ≤ `reach` changes axis
    /// `i` by at most `⌈reach/hᵢ⌉` cells. The window over-approximates
    /// the Euclidean ball; exact distance checks inside the kernels keep
    /// the transition set identical to the all-pairs scan.
    fn axis_windows(&self) -> [usize; N] {
        let n0 = self.cells_per_axis;
        let mut window = [0usize; N];
        for (w, &h) in window.iter_mut().zip(&self.arena.spacing) {
            *w = if h > 0.0 {
                ((self.arena.reach / h).ceil() as usize).min(n0 - 1)
            } else {
                n0 - 1
            };
        }
        window
    }

    /// Runs the DP over the instance's steps with the given transition
    /// kernel and returns the optimal total cost.
    ///
    /// `instance` must be the one the solver was built for: the arena
    /// (node grid, movement reach, start-snap slack) was derived from its
    /// bounding box and `max_move` at construction. Debug builds assert a
    /// signature match (start, `max_move`, `D`, horizon); release builds
    /// do not re-validate — a mismatched instance is priced on the wrong
    /// arena. The one-shot wrappers enforce the pairing.
    pub fn solve_with(
        &mut self,
        instance: &Instance<N>,
        order: ServingOrder,
        kernel: TransitionKernel,
    ) -> f64 {
        self.check_instance(instance);
        obs::incr(obs::Counter::GridSolves);
        let kernel = self.resolve_kernel(kernel);
        self.reset_initial_costs(&instance.start);
        let window = self.axis_windows();
        for step in &instance.steps {
            obs::incr(obs::Counter::GridSteps);
            let step_span = obs::timer(obs::Hist::GridStepNs);
            self.fill_service_costs(&step.requests);
            self.run_transition(instance.d, order, kernel, &window);
            step_span.stop();
            std::mem::swap(&mut self.cost, &mut self.next);
        }
        self.cost.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Degenerate float grids (spacing under one ulp) cannot host the
    /// SMAWK sweep; serve them with the windowed scan.
    fn resolve_kernel(&self, kernel: TransitionKernel) -> TransitionKernel {
        match kernel {
            TransitionKernel::DistanceTransform if !self.arena.axes_strict => {
                TransitionKernel::Windowed
            }
            k => k,
        }
    }

    /// One step's transition relaxation under the (resolved) kernel:
    /// `cost`/`serve` → `next`.
    fn run_transition(
        &mut self,
        d: f64,
        order: ServingOrder,
        kernel: TransitionKernel,
        window: &[usize; N],
    ) {
        match kernel {
            TransitionKernel::AllPairs => self.transition_all_pairs(d, order),
            TransitionKernel::Windowed => self.transition_windowed(d, order, window),
            TransitionKernel::DistanceTransform => {
                self.transition_distance_transform(d, order, window)
            }
        }
    }

    /// Warm incremental solve: like [`GridDp::solve_with`], but the
    /// solver journals every step's inputs and outputs and, on the next
    /// call, **fast-forwards over the longest step prefix whose request
    /// bits are unchanged**, loading that prefix's journaled frontier
    /// instead of recomputing it. Later steps whose bits match their
    /// journal entry still reuse the entry's service scan (service costs
    /// are a pure per-step function of the requests and the arena), even
    /// when an earlier step diverged.
    ///
    /// **Exactness guard.** The only reuse criterion is bit-level
    /// equality of the step's request coordinates, and the journal is
    /// keyed to the (serving order, resolved kernel) pair and truncated
    /// whenever a recomputation shortens the trusted chain — so a warm
    /// solve returns the **bit-exact** cold result for every instance
    /// (pinned by proptests in `tests/transition_kernels.rs`, for every
    /// row-fan thread count).
    ///
    /// Unlike [`GridDp::solve_with`], the instance may have **any
    /// horizon** (prefix sweeps are the point); it must still share the
    /// construction instance's start, movement budget, and `D`, and its
    /// requests must stay inside the construction bounding box for the
    /// arena to price it faithfully — chained prefixes of the
    /// construction instance satisfy both by construction.
    ///
    /// The journal costs `O(horizon · cells)` floats; [`GridDp::reset_warm`]
    /// drops it. Cold solves via [`GridDp::solve_with`] never touch it.
    pub fn solve_warm(
        &mut self,
        instance: &Instance<N>,
        order: ServingOrder,
        kernel: TransitionKernel,
    ) -> f64 {
        debug_assert!(
            self.built_for.0 == instance.start
                && self.built_for.1 == instance.max_move
                && self.built_for.2 == instance.d,
            "GridDp warm-solved against a different instance family than it was built for"
        );
        obs::incr(obs::Counter::GridSolves);
        let kernel = self.resolve_kernel(kernel);
        if self.warm.order != Some((order, kernel)) {
            self.warm.steps.clear();
            self.warm.order = Some((order, kernel));
        }
        let cells = self.cost.len();
        let horizon = instance.steps.len();

        // Longest journal prefix with bit-identical requests: its
        // frontier chain is trusted verbatim.
        let mut reuse = 0usize;
        while reuse < self.warm.steps.len().min(horizon)
            && req_bits_match(
                &self.warm.steps[reuse].req_bits,
                &instance.steps[reuse].requests,
            )
        {
            reuse += 1;
        }
        if reuse == 0 {
            self.reset_initial_costs(&instance.start);
        } else {
            self.cost
                .copy_from_slice(&self.warm.steps[reuse - 1].frontier);
            obs::add(obs::Counter::GridWarmReuseCells, (reuse * cells) as u64);
        }

        let window = self.axis_windows();
        for (t, step) in instance.steps.iter().enumerate().skip(reuse) {
            obs::incr(obs::Counter::GridSteps);
            let step_span = obs::timer(obs::Hist::GridStepNs);
            let serve_reused = t < self.warm.steps.len()
                && req_bits_match(&self.warm.steps[t].req_bits, &step.requests);
            if serve_reused {
                self.serve.copy_from_slice(&self.warm.steps[t].serve);
                obs::add(obs::Counter::GridWarmReuseCells, cells as u64);
            } else {
                self.fill_service_costs(&step.requests);
            }
            self.run_transition(instance.d, order, kernel, &window);
            step_span.stop();
            std::mem::swap(&mut self.cost, &mut self.next);
            // Re-journal the step: new bits/serve if they diverged, and
            // always the recomputed frontier (the chain up to `t` now
            // describes *this* instance).
            if t < self.warm.steps.len() {
                let entry = &mut self.warm.steps[t];
                if !serve_reused {
                    entry.req_bits = step_req_bits(&step.requests);
                    entry.serve.clear();
                    entry.serve.extend_from_slice(&self.serve);
                }
                entry.frontier.clear();
                entry.frontier.extend_from_slice(&self.cost);
            } else {
                self.warm.steps.push(WarmStep {
                    req_bits: step_req_bits(&step.requests),
                    serve: self.serve.clone(),
                    frontier: self.cost.clone(),
                });
            }
        }
        // A pure prefix re-solve (nothing recomputed) leaves the longer
        // journal intact — its tail is still a trusted extension of the
        // matched prefix. Any recomputation invalidates entries beyond
        // the horizon (their frontiers chained through replaced steps).
        if reuse < horizon {
            self.warm.steps.truncate(horizon);
        }
        self.cost.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Drops the warm-solve journal (and its `O(horizon · cells)`
    /// memory). The next [`GridDp::solve_warm`] runs fully cold.
    pub fn reset_warm(&mut self) {
        self.warm.steps.clear();
        self.warm.order = None;
    }

    /// Radius-pruned neighbor-window DP ([`TransitionKernel::Windowed`]);
    /// kept as the historical name for the exact-equality fast path.
    pub fn solve(&mut self, instance: &Instance<N>, order: ServingOrder) -> f64 {
        self.solve_with(instance, order, TransitionKernel::Windowed)
    }

    /// The original all-pairs transition scan
    /// ([`TransitionKernel::AllPairs`]), retained as the independent
    /// baseline every other kernel is certified against — and as the
    /// "before" side of the DP benchmarks.
    pub fn solve_unpruned(&mut self, instance: &Instance<N>, order: ServingOrder) -> f64 {
        self.solve_with(instance, order, TransitionKernel::AllPairs)
    }

    /// One step of the all-pairs transition scan: `cost`/`serve` →
    /// `next`.
    fn transition_all_pairs(&mut self, d: f64, order: ServingOrder) {
        let inf = f64::INFINITY;
        let (cost, next, serve) = (&self.cost, &mut self.next, &self.serve);
        let nodes = &self.arena.nodes;
        let reach = self.arena.reach;
        let mut scanned = 0u64;
        for c in next.iter_mut() {
            *c = inf;
        }
        for (j, pj) in nodes.iter().enumerate() {
            if cost[j].is_infinite() {
                continue;
            }
            scanned += nodes.len() as u64;
            for (k, pk) in nodes.iter().enumerate() {
                let move_dist = pj.distance(pk);
                if move_dist > reach {
                    continue;
                }
                let c = match order {
                    ServingOrder::MoveFirst => cost[j] + d * move_dist + serve[k],
                    ServingOrder::AnswerFirst => cost[j] + serve[j] + d * move_dist,
                };
                if c < next[k] {
                    next[k] = c;
                }
            }
        }
        obs::add(obs::Counter::GridAllPairsCells, scanned);
    }

    /// One step of the radius-pruned neighbor-window scan: for each live
    /// source, scatter into the per-axis window around it. The exact
    /// distance check keeps the transition set identical to the all-pairs
    /// scan.
    fn transition_windowed(&mut self, d: f64, order: ServingOrder, window: &[usize; N]) {
        let inf = f64::INFINITY;
        let cells_per_axis = self.cells_per_axis;
        let (cost, next, serve) = (&self.cost, &mut self.next, &self.serve);
        let nodes = &self.arena.nodes;
        let reach = self.arena.reach;
        let mut stride = [1usize; N];
        for i in 1..N {
            stride[i] = stride[i - 1] * cells_per_axis;
        }
        for c in next.iter_mut() {
            *c = inf;
        }
        let mut scanned = 0u64;
        for (j, pj) in nodes.iter().enumerate() {
            if cost[j].is_infinite() {
                continue;
            }
            // Decode j's cell coordinates and clamp the window per axis.
            let mut lo = [0usize; N];
            let mut hi = [0usize; N];
            let mut cur = [0usize; N];
            let mut vol = 1u64;
            for i in 0..N {
                let c = (j / stride[i]) % cells_per_axis;
                lo[i] = c.saturating_sub(window[i]);
                hi[i] = (c + window[i]).min(cells_per_axis - 1);
                cur[i] = lo[i];
                vol *= (hi[i] - lo[i] + 1) as u64;
            }
            scanned += vol;
            // Odometer over the neighbor box.
            loop {
                let mut k = 0usize;
                for i in 0..N {
                    k += cur[i] * stride[i];
                }
                let pk = &nodes[k];
                let move_dist = pj.distance(pk);
                if move_dist <= reach {
                    let c = match order {
                        ServingOrder::MoveFirst => cost[j] + d * move_dist + serve[k],
                        ServingOrder::AnswerFirst => cost[j] + serve[j] + d * move_dist,
                    };
                    if c < next[k] {
                        next[k] = c;
                    }
                }
                // Advance the odometer.
                let mut i = 0;
                loop {
                    cur[i] += 1;
                    if cur[i] <= hi[i] {
                        break;
                    }
                    cur[i] = lo[i];
                    i += 1;
                    if i == N {
                        break;
                    }
                }
                if i == N {
                    break;
                }
            }
        }
        obs::add(obs::Counter::GridWindowedCells, scanned);
    }

    /// One step of the SMAWK min-plus distance transform. See the
    /// [module docs](self) for the decomposition and the exactness
    /// argument; in brief: per (target row, source row) pair, the
    /// reach-constrained candidate matrix — padded on infeasible and
    /// dead entries — is totally monotone (the proof lives on `dt_row`),
    /// so one SMAWK row-minima reduction resolves every target cell's
    /// constrained minimum in `O(n0)` matrix probes. Feasibility is
    /// tested on squared distances against [`sq_reach_threshold`],
    /// bit-faithful to the oracle's `d(j,k) ≤ reach` predicate.
    ///
    /// Target rows are mutually independent — each reads only the frozen
    /// step inputs and writes only its own `next` slice — so the row loop
    /// fans out over the [`msp_analysis::sweep`] pool in contiguous
    /// chunks, one [`DtScratch`] per worker chunk ([`GridDp::set_row_threads`]
    /// sizes the fan). Per-row arithmetic does not depend on the
    /// chunking, so the transition result is bit-identical for every
    /// thread count.
    fn transition_distance_transform(&mut self, d: f64, order: ServingOrder, window: &[usize; N]) {
        let n0 = self.cells_per_axis;
        let cells = self.cost.len();
        let rows = cells / n0;

        // Sequential prologue — transition base costs: what a source
        // contributes before the move term. Mirrors the oracle's
        // expression evaluation order so admitted candidates are priced
        // bit-identically.
        {
            let cost = &self.cost;
            let serve = &self.serve;
            let base = &mut self.base;
            match order {
                ServingOrder::MoveFirst => base.copy_from_slice(cost),
                ServingOrder::AnswerFirst => {
                    for ((b, &c), &sv) in base.iter_mut().zip(cost).zip(serve) {
                        *b = c + sv;
                    }
                }
            }

            // Per-row live-source counts (O(1) dead-row tests) and
            // per-row base minima (the whole-pair skip bound).
            let live = &mut self.row_live;
            let row_min = &mut self.row_min;
            for (r, (live_out, rmin_out)) in live
                .iter_mut()
                .zip(row_min.iter_mut())
                .enumerate()
                .take(rows)
            {
                let sbase = r * n0;
                let mut n_live = 0u32;
                let mut rmin = f64::INFINITY;
                for i in 0..n0 {
                    let b = base[sbase + i];
                    n_live += u32::from(b.is_finite());
                    if b < rmin {
                        rmin = b;
                    }
                }
                *live_out = n_live;
                *rmin_out = rmin;
            }
        }

        for c in self.next.iter_mut() {
            *c = f64::INFINITY;
        }

        // Feasibility thresholds on squared distances. For N ≤ 2 the
        // separable square `Δ0² + C²` is bit-identical to the oracle's
        // left-associated axis sum, so `r2win = r2max` decides
        // feasibility exactly. For N ≥ 3 the separable square may differ
        // from the oracle's sum by reassociation ulps, so the window
        // uses a hair-inflated threshold (a guaranteed superset of the
        // oracle's transition set) and winners re-check with the
        // oracle's own accumulation order before being admitted.
        let r2max = sq_reach_threshold(self.arena.reach);
        let r2win = if N <= 2 { r2max } else { r2max * (1.0 + 1e-12) };

        let threads = msp_analysis::sweep::effective_threads(self.row_threads)
            .min(rows)
            .max(1);
        while self.dt_scratch.len() < threads {
            self.dt_scratch.push(DtScratch::new(n0));
        }

        let ctx = DtStep {
            n0,
            d,
            x0: &self.arena.axis[0][..],
            axis: &self.arena.axis,
            nodes: &self.arena.nodes,
            base: &self.base,
            live: &self.row_live,
            row_min: &self.row_min,
            window,
            r2max,
            r2win,
        };
        let next = &mut self.next[..];
        let dt_scratch = &mut self.dt_scratch[..];

        if threads <= 1 {
            let scratch = &mut dt_scratch[0];
            for (rt, nrow) in next.chunks_mut(n0).enumerate() {
                dt_row(&ctx, rt, nrow, scratch);
            }
        } else {
            // Contiguous row chunks, one per worker, each with its own
            // scratch — the fan-out shape the sweep pool serves without a
            // per-step spawn/join barrier.
            let per = rows.div_ceil(threads);
            let mut items: Vec<(usize, &mut [f64], &mut DtScratch)> = next
                .chunks_mut(per * n0)
                .zip(dt_scratch.iter_mut())
                .enumerate()
                .map(|(c, (chunk, scratch))| (c * per, chunk, scratch))
                .collect();
            msp_analysis::sweep::parallel_for_each_mut(&mut items, threads, |_, item| {
                let (row0, chunk, scratch) = item;
                for (ri, nrow) in chunk.chunks_mut(ctx.n0).enumerate() {
                    dt_row(&ctx, *row0 + ri, nrow, scratch);
                }
            });
        }

        // Move-First serves from the target cell: add the service term
        // after the min (rounding is monotone, so min-then-add matches
        // the oracle's add-then-min bit for bit; ∞ stays ∞).
        if matches!(order, ServingOrder::MoveFirst) {
            for (nx, &sv) in self.next.iter_mut().zip(self.serve.iter()) {
                *nx += sv;
            }
        }
    }
}

/// A padded candidate-matrix entry: the lexicographic `(class, key)`
/// pair `smawk` minimizes over. Class 0 = live in-window candidate (key
/// = its value), class 1 = reach-infeasible pad, class 2 = dead source;
/// pad keys are index ramps chosen so padding preserves total
/// monotonicity — see `dt_row`'s proof.
type DtEntry = (u8, f64);

/// Strictly-worse on padded entries (lexicographic; ties are *not*
/// worse, so every comparison site keeps the leftmost column).
#[inline]
fn entry_worse(a: DtEntry, b: DtEntry) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 > b.1)
}

/// SMAWK row-minima reduction (Aggarwal et al. 1987) over the row
/// arithmetic progression `o, o+s, o+2s, …` (below `n0`) and the column
/// set `cols[col_lo..]`, writing the leftmost argmin column of each row
/// into `argmin[row]`.
///
/// Requires `eval` to be **totally monotone** over the full row range
/// and the given columns: for rows `k1 < k2` and columns `j1 < j2`,
/// `eval(k1,j1) > eval(k1,j2)` implies `eval(k2,j1) > eval(k2,j2)`
/// (with `>` the lexicographic [`DtEntry`] order). Leftmost argmins of
/// such a matrix are nondecreasing in the row, which is what the
/// REDUCE/recurse/interpolate scheme exploits.
///
/// `cols` is a stack-disciplined arena: this call appends its REDUCE
/// survivors above `cols.len()`, lends them to the odd-row recursion,
/// and truncates back before returning — one flat allocation serves the
/// whole `O(log n0)`-deep recursion with at most `2·n0` total entries.
fn smawk<F: Fn(usize, usize) -> DtEntry>(
    eval: &F,
    o: usize,
    s: usize,
    n0: usize,
    cols: &mut Vec<u32>,
    col_lo: usize,
    argmin: &mut [u32],
) {
    let m = (n0 - o).div_ceil(s); // rows in this level's progression
    let col_hi = cols.len();
    // REDUCE: keep at most `m` columns that can still host a row
    // minimum. The stack cell at depth `t` is compared on row `o + s·t`;
    // a strictly-worse top is popped (ties keep the leftmost column).
    for ci in col_lo..col_hi {
        let c = cols[ci];
        loop {
            let depth = cols.len() - col_hi;
            if depth == 0 {
                cols.push(c);
                break;
            }
            let row = o + s * (depth - 1);
            let top = cols[col_hi + depth - 1];
            if entry_worse(eval(row, top as usize), eval(row, c as usize)) {
                cols.pop();
            } else {
                if depth < m {
                    cols.push(c);
                }
                break;
            }
        }
    }
    let reduced_hi = cols.len();
    if m == 1 {
        // The reduction above is exactly a running strict-min scan of
        // the single row: the lone survivor is its leftmost argmin.
        argmin[o] = cols[col_hi];
        cols.truncate(col_hi);
        return;
    }
    // Solve the odd rows (an arithmetic progression again) on the
    // reduced columns, then INTERPOLATE each even row between its odd
    // neighbors' argmins — a single monotone pointer pass, since
    // leftmost argmins are nondecreasing in the row.
    smawk(eval, o + s, 2 * s, n0, cols, col_hi, argmin);
    let mut p = col_hi;
    let mut k = o;
    while k < n0 {
        let stop_col = if k + s < n0 {
            argmin[k + s]
        } else {
            cols[reduced_hi - 1]
        };
        let mut q = p;
        let mut best_col = cols[q];
        let mut best = eval(k, best_col as usize);
        while cols[q] != stop_col {
            q += 1;
            let c = cols[q];
            let e = eval(k, c as usize);
            if entry_worse(best, e) {
                best = e;
                best_col = c;
            }
        }
        argmin[k] = best_col;
        p = q;
        k += 2 * s;
    }
    cols.truncate(col_hi);
}

/// One target row of the distance-transform transition: for every
/// admissible source row of the rest-axis window, one SMAWK row-minima
/// reduction over the pair's padded candidate matrix relaxes the row's
/// costs into `nrow` (the row's slice of the `next` frontier). Pure
/// function of the frozen [`DtStep`] inputs — the unit the row fan
/// parallelizes over.
///
/// # Total monotonicity of the padded candidate matrix
///
/// Fix one (target row `rt`, source row `rs`) pair with rest-axis
/// squared offset `C²`. Targets `k` and sources `j` both index the
/// strictly increasing axis-0 coordinates `x`. The entry fed to
/// [`smawk`] is the lexicographic pair `E(k,j) = (class, key)`:
///
/// * **class 0** — live in-window: `base[j]` finite and the separable
///   squared move `Δ² + C²` (`Δ = x[k] − x[j]`) passes the feasibility
///   threshold `r2win`; `key = base[j] + D·√(Δ² + C²)`.
/// * **class 1** — reach-infeasible pad with a finite `base[j]`:
///   `key = −j` when `j < k` (left of the window), `+j` when `j > k`
///   (right of it; `j = k` is always feasible since `C² ≤ r2win`).
/// * **class 2** — dead source (`base[j] = ∞`): `key = −j`.
///
/// SMAWK needs: for `k1 < k2`, `j1 < j2`, `E(k1,j1) > E(k1,j2)` implies
/// `E(k2,j1) > E(k2,j2)`. Feasibility is *staircase-monotone in `k` at
/// the `f64` level*: for `j ≤ k` the separable square is computed from
/// `Δ ≥ 0`, and IEEE subtraction, squaring of nonnegatives, and the
/// final add are each monotone, so a `j` left-infeasible at `k1` stays
/// left-infeasible at every `k2 > k1 ≥ j`; symmetrically a `j`
/// right-infeasible at `k2` is right-infeasible at every `k1 < k2 ≤ j`,
/// and in-window sources form a contiguous index interval around `k`.
/// Case analysis on the classes at `k1`:
///
/// * **j1 dead** — `E(·,j1) = (2,−j1)` at every row. If `j2` is also
///   dead the premise and conclusion are both `−j1 > −j2`, i.e. always
///   true. Otherwise `j2`'s class is ≤ 1 at every row and the
///   conclusion `(2,·) > (≤1,·)` holds unconditionally.
/// * **j2 dead, j1 not** — premise `(≤1,·) > (2,·)` is false; nothing
///   to show.
/// * **j1 left-pad at k1** (`j1 < k1`, infeasible): by the staircase,
///   `j1` stays left-pad at every `k2 > k1`, so `E(k2,j1) = (1,−j1)`.
///   At `k2`, a live `j2` gives `(1,−j1) > (0,·)` by class; a left-pad
///   `j2` gives `−j1 > −j2`, always true for `j1 < j2`; and a
///   right-pad `j2` at `k2` cannot co-occur with a true premise —
///   right-infeasibility at `k2` propagates down to `k1 < k2`, where
///   the premise would have compared `(1,−j1) > (1,+j2)`, false.
/// * **j1 right-pad at k1** (`j1 > k1`, infeasible): `j2 > j1 > k1`
///   is right of a right-infeasible source, so `j2` is right-infeasible
///   at `k1` too (windows are contiguous), and the premise reads
///   `+j1 > +j2` — false for `j1 < j2`. Nothing to show.
/// * **j1 live at k1, j2 live at k1** — both keys are cone values
///   `g_j(x) = base[j] + D·√((x−x_j)² + C²)`. The difference
///   `g_{j1}(x) − g_{j2}(x)` is nondecreasing in `x` for `x_{j1} <
///   x_{j2}` (same-slope-asymptote cones; the
///   [`ConeEnvelope`](crate::envelope::ConeEnvelope) crossing argument),
///   so `g_{j1}(x_{k1}) > g_{j2}(x_{k1})` implies the same at
///   `x_{k2} > x_{k1}` in real arithmetic — float rounding can flip
///   only tie-level outcomes, which the exactness contract already
///   absorbs (never below the oracle, ≤ 1e-9 relative). At `k2`, if
///   `j1` has exited `k1`'s window it exits leftward (`j1 ≤ k1 + w`
///   and windows slide right with `k`), becoming `(1,−j1)`: a live
///   `j2` then satisfies the conclusion by class, a left-pad `j2` by
///   `−j1 > −j2`, and a right-pad `j2` is impossible under the premise
///   (it would have been right-infeasible at `k1` already, where `j2`
///   was live). If `j1` is still live at `k2`, then `j2` cannot have
///   left-exited (`j1 < j2` cannot have `j2` left of a window holding
///   `j1`) and cannot have right-exited (right-infeasibility at `k2`
///   propagates down to `k1`, contradicting the live premise) — so
///   `j2` is live too and the cone argument closes the case.
/// * **j1 live at k1, j2 pad at k1** — `j2` infeasible at `k1` with
///   `j1 < j2` live means `j2` is right-pad (`j2 > k1`; a left-pad
///   `j2` would straddle the window), so the premise `(0,·) > (1,·)`
///   is false. Nothing to show.
///
/// In every case the premise survives to `k2` or never held, so the
/// padded matrix is totally monotone and [`smawk`]'s leftmost argmins
/// are correct. A class-0 winner therefore *is* the row-pair's
/// constrained minimum over live in-window sources; a class ≥ 1 winner
/// certifies the window holds no live source and the cell is skipped.
/// For `N ≤ 2` the separable square is bit-identical to the oracle's
/// left-associated axis sum, so the winner's key is already the
/// oracle's candidate value; for `N ≥ 3` the winner re-checks against
/// the oracle's own accumulation order (`r2max`) and the rare
/// ulp-band rejection falls back to an exact scan of the (contiguous)
/// feasible window.
fn dt_row<const N: usize>(
    ctx: &DtStep<'_, N>,
    rt: usize,
    nrow: &mut [f64],
    scratch: &mut DtScratch,
) {
    let DtStep {
        n0,
        d,
        x0,
        axis,
        nodes,
        base,
        live,
        row_min,
        window,
        r2max,
        r2win,
    } = *ctx;
    let DtScratch {
        pair_buf,
        cols,
        argmin,
    } = scratch;

    // Metrics-only tallies, flushed to the registry once per row so the
    // hot sweeps touch no atomics.
    let dt_pairs;
    let mut smawk_rows = 0u64;

    {
        // Decode the target row's rest-axis indices and clamp the
        // per-axis source window (axes 1..N live in row space with
        // stride n0^(i-1)), then collect the admissible source rows.
        let mut t_rest = [0usize; N];
        let mut lo = [0usize; N];
        let mut hi = [0usize; N];
        let mut cur = [0usize; N];
        {
            let mut stride = 1usize;
            for i in 0..N.saturating_sub(1) {
                let ti = (rt / stride) % n0;
                t_rest[i] = ti;
                lo[i] = ti.saturating_sub(window[i + 1]);
                hi[i] = (ti + window[i + 1]).min(n0 - 1);
                cur[i] = lo[i];
                stride *= n0;
            }
        }
        pair_buf.clear();
        // Odometer over the source rows of the rest-axis window (a
        // single pass when N = 1: the line has one row pair). A pair
        // with C² > r2win is wholly infeasible (every move distance
        // is at least C), matching the oracle's per-candidate reach
        // rejections; dead rows are skipped via the prefix counts.
        loop {
            let mut rs = 0usize;
            let mut c2 = 0.0f64;
            {
                let mut stride = 1usize;
                for i in 0..N.saturating_sub(1) {
                    rs += cur[i] * stride;
                    let dx = axis[i + 1][t_rest[i]] - axis[i + 1][cur[i]];
                    c2 += dx * dx;
                    stride *= n0;
                }
            }
            if c2 <= r2win && live[rs] > 0 {
                pair_buf.push((c2, rs));
            }
            // Advance the row odometer.
            let mut i = 0;
            while i < N.saturating_sub(1) {
                cur[i] += 1;
                if cur[i] <= hi[i] {
                    break;
                }
                cur[i] = lo[i];
                i += 1;
            }
            if i == N.saturating_sub(1) {
                break;
            }
        }
        // Nearest rows first: the frontier row tightens early, so the
        // rim pairs usually fail the improvement bound outright.
        pair_buf.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        dt_pairs = pair_buf.len() as u64;

        let tbase = rt * n0;
        for &(c2, rs) in pair_buf.iter() {
            let sbase = rs * n0;
            // Whole-pair skip: every candidate of this pair costs at
            // least the row's cheapest base plus the D·C rest-offset
            // move — if that cannot beat the worst frontier cell, no
            // cell can improve. (Skipping non-improving candidates
            // keeps the DT result within tie-level slop of the
            // oracle, and never below it.)
            let pair_floor = row_min[rs] + d * c2.sqrt();
            let frontier_max = nrow.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if pair_floor >= frontier_max {
                continue;
            }
            smawk_rows += 1;

            // Separable squared move distance (bit-identical to the
            // oracle's sum for N ≤ 2; a window superset otherwise).
            let d2_sep = |j0: usize, k0: usize| -> f64 {
                let dx = x0[k0] - x0[j0];
                dx * dx + c2
            };
            // The oracle's own squared sum, for N ≥ 3 re-checks.
            let d2_exact = |j0: usize, k0: usize| -> f64 {
                let a = &nodes[sbase + j0];
                let b = &nodes[tbase + k0];
                let mut s = 0.0;
                for i in 0..N {
                    let t = a[i] - b[i];
                    s += t * t;
                }
                s
            };
            // Admits `j0` for `k0` iff the oracle would; returns the
            // candidate value (the oracle's expression) or None.
            let admit = |j0: usize, k0: usize| -> Option<f64> {
                if N <= 2 {
                    Some(base[sbase + j0] + d * d2_sep(j0, k0).sqrt())
                } else {
                    let d2 = d2_exact(j0, k0);
                    (d2 <= r2max).then(|| base[sbase + j0] + d * d2.sqrt())
                }
            };

            // The padded candidate matrix — see the function docs for
            // the class/key scheme and its total-monotonicity proof.
            let eval = |k0: usize, j0: usize| -> DtEntry {
                let b = base[sbase + j0];
                if !b.is_finite() {
                    return (2, -(j0 as f64));
                }
                let dx = x0[k0] - x0[j0];
                let d2 = dx * dx + c2;
                if d2 <= r2win {
                    (0, b + d * d2.sqrt())
                } else if j0 < k0 {
                    (1, -(j0 as f64))
                } else {
                    (1, j0 as f64)
                }
            };

            cols.clear();
            cols.extend(0..n0 as u32);
            smawk(&eval, 0, 1, n0, cols, 0, argmin);

            for (k0, nx) in nrow.iter_mut().enumerate() {
                let j0 = argmin[k0] as usize;
                let b = base[sbase + j0];
                if !b.is_finite() {
                    continue; // class-2 winner: the row is locally dead
                }
                let dx = x0[k0] - x0[j0];
                if dx * dx + c2 > r2win {
                    continue; // class-1 winner: no live in-window source
                }
                match admit(j0, k0) {
                    Some(cand) => {
                        if cand < *nx {
                            *nx = cand;
                        }
                    }
                    None => {
                        // N ≥ 3 ulp-band winner: scan the (contiguous)
                        // feasible window exactly, expanding from the
                        // always-feasible center k0.
                        let mut a = k0;
                        while a > 0 && d2_sep(a - 1, k0) <= r2win {
                            a -= 1;
                        }
                        let mut bb = k0;
                        while bb + 1 < n0 && d2_sep(bb + 1, k0) <= r2win {
                            bb += 1;
                        }
                        for jf in a..=bb {
                            if !base[sbase + jf].is_finite() {
                                continue;
                            }
                            if let Some(cand) = admit(jf, k0) {
                                if cand < *nx {
                                    *nx = cand;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    if obs::enabled() {
        obs::incr(obs::Counter::GridDtRows);
        obs::add(obs::Counter::GridDtPairs, dt_pairs);
        obs::add(obs::Counter::GridSmawkRows, smawk_rows);
    }
}

/// Exhaustive DP optimum over a `cells_per_axis`-per-dimension grid
/// covering the instance's bounding box (start + all requests), using the
/// fast [`TransitionKernel::DistanceTransform`] kernel (never below, and
/// within ~1e-12 relative of, the all-pairs oracle — see the
/// [module docs](self)). One-shot wrapper over [`GridDp`]; sweeps solving
/// repeatedly should hold a `GridDp` and reuse its buffers.
///
/// ```
/// use msp_core::cost::ServingOrder;
/// use msp_core::model::{Instance, Step};
/// use msp_geometry::P2;
///
/// // Two steps on the plane: requests pull the server up-right.
/// let steps = vec![
///     Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
///     Step::new(vec![P2::xy(1.0, 1.0)]),
/// ];
/// let inst = Instance::new(2.0, 0.5, P2::origin(), steps);
/// let opt = msp_offline::grid_optimum(&inst, 31, ServingOrder::MoveFirst);
/// // The offline optimum is finite and certainly no more than serving
/// // everything from the start without moving.
/// let stay_home: f64 = inst.steps.iter()
///     .flat_map(|s| s.requests.iter().map(|r| r.distance(&inst.start)))
///     .sum();
/// assert!(opt > 0.0 && opt <= stay_home + 1e-9);
/// ```
///
/// # Panics
/// Panics when the grid would be degenerate (`cells_per_axis < 2`) or
/// infeasibly large (> 200k cells) — this is a test oracle, not a
/// solver.
pub fn grid_optimum<const N: usize>(
    instance: &Instance<N>,
    cells_per_axis: usize,
    order: ServingOrder,
) -> f64 {
    GridDp::new(instance, cells_per_axis).solve_with(
        instance,
        order,
        TransitionKernel::DistanceTransform,
    )
}

/// One-shot wrapper over [`TransitionKernel::AllPairs`], the parity
/// oracle of [`grid_optimum`] and of every other kernel.
///
/// # Panics
/// Same contract as [`grid_optimum`].
pub fn grid_optimum_unpruned<const N: usize>(
    instance: &Instance<N>,
    cells_per_axis: usize,
    order: ServingOrder,
) -> f64 {
    GridDp::new(instance, cells_per_axis).solve_unpruned(instance, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::solve_line;
    use msp_core::model::Step;
    use msp_geometry::{P1, P2};

    /// DT may differ from the oracle only by envelope tie-breaking: never
    /// below, and within a hair relative.
    fn assert_dt_parity(dt: f64, oracle: f64, ctx: &str) {
        if oracle.is_finite() {
            assert!(dt >= oracle, "{ctx}: dt {dt} undercuts oracle {oracle}");
            assert!(
                (dt - oracle).abs() <= 1e-9 * (1.0 + oracle.abs()),
                "{ctx}: dt {dt} vs oracle {oracle}"
            );
        } else {
            assert!(dt.is_infinite(), "{ctx}: dt {dt} vs infinite oracle");
        }
    }

    #[test]
    fn matches_exact_line_solver_on_small_instance() {
        let steps = vec![
            Step::single(P1::new([2.0])),
            Step::single(P1::new([2.0])),
            Step::single(P1::new([-1.0])),
            Step::single(P1::new([0.5])),
        ];
        let inst = Instance::new(2.0, 1.0, P1::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let exact = solve_line(&inst, order).cost;
            let grid = grid_optimum(&inst, 241, order);
            assert!(
                (grid - exact).abs() < 0.12,
                "{order:?}: grid {grid} vs exact {exact}"
            );
            // The grid never undercuts the true optimum by more than the
            // start-snap slack.
            assert!(grid >= exact - 0.1);
        }
    }

    #[test]
    fn planar_triangle_instance_is_consistent_across_resolutions() {
        let steps = vec![
            Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
            Step::new(vec![P2::xy(1.0, 1.0)]),
        ];
        let inst = Instance::new(1.0, 0.7, P2::origin(), steps);
        let coarse = grid_optimum(&inst, 15, ServingOrder::MoveFirst);
        let fine = grid_optimum(&inst, 41, ServingOrder::MoveFirst);
        // Refinement should not increase the optimum by much (monotone up
        // to snap slack) and both must be finite.
        assert!(fine.is_finite() && coarse.is_finite());
        assert!(fine <= coarse + 0.2, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn zero_steps_cost_zero() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        assert_eq!(grid_optimum(&inst, 5, ServingOrder::MoveFirst), 0.0);
    }

    #[test]
    #[should_panic(expected = "grid too large")]
    fn oversize_grid_rejected() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        let _ = grid_optimum(&inst, 500, ServingOrder::MoveFirst);
    }

    #[test]
    fn kernels_agree_on_the_line() {
        let steps = vec![
            Step::single(P1::new([2.0])),
            Step::new(vec![P1::new([-1.5]), P1::new([1.0])]),
            Step::new(vec![]),
            Step::single(P1::new([0.25])),
        ];
        let inst = Instance::new(1.5, 0.8, P1::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            for cells in [17, 65, 129] {
                let mut dp = GridDp::new(&inst, cells);
                let full = dp.solve_with(&inst, order, TransitionKernel::AllPairs);
                let pruned = dp.solve_with(&inst, order, TransitionKernel::Windowed);
                let dt = dp.solve_with(&inst, order, TransitionKernel::DistanceTransform);
                assert_eq!(
                    pruned, full,
                    "{order:?} cells={cells}: windowed {pruned} vs all-pairs {full}"
                );
                assert_dt_parity(dt, full, &format!("{order:?} cells={cells}"));
            }
        }
    }

    #[test]
    fn kernels_agree_on_the_plane() {
        let steps = vec![
            Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
            Step::new(vec![P2::xy(1.2, 1.1)]),
            Step::new(vec![P2::xy(-0.5, 0.6), P2::xy(0.9, -0.4)]),
        ];
        let inst = Instance::new(2.0, 0.6, P2::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            for cells in [9, 21, 33] {
                let mut dp = GridDp::new(&inst, cells);
                let full = dp.solve_with(&inst, order, TransitionKernel::AllPairs);
                let pruned = dp.solve_with(&inst, order, TransitionKernel::Windowed);
                let dt = dp.solve_with(&inst, order, TransitionKernel::DistanceTransform);
                assert_eq!(
                    pruned, full,
                    "{order:?} cells={cells}: windowed {pruned} vs all-pairs {full}"
                );
                assert_dt_parity(dt, full, &format!("{order:?} cells={cells}"));
            }
        }
    }

    #[test]
    fn reused_solver_matches_one_shot_wrappers() {
        // One GridDp, solved repeatedly across both orders and every
        // kernel: every reuse must reproduce the fresh-solver result
        // exactly (buffer hoisting is a pure allocation optimization).
        let steps = vec![
            Step::new(vec![P2::xy(0.8, 0.2), P2::xy(-0.3, 1.0)]),
            Step::new(vec![P2::xy(1.1, -0.6)]),
            Step::new(vec![]),
            Step::new(vec![P2::xy(0.1, 0.4), P2::xy(0.9, 0.9), P2::xy(-0.5, 0.0)]),
        ];
        let inst = Instance::new(1.5, 0.5, P2::origin(), steps);
        let mut dp = GridDp::new(&inst, 17);
        for _round in 0..2 {
            for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
                let reused_full = dp.solve_with(&inst, order, TransitionKernel::AllPairs);
                let fresh_full = grid_optimum_unpruned(&inst, 17, order);
                assert_eq!(reused_full, fresh_full, "{order:?} all-pairs");
                let reused = dp.solve_with(&inst, order, TransitionKernel::Windowed);
                assert_eq!(reused, reused_full, "{order:?} windowed vs all-pairs");
                let reused_dt = dp.solve_with(&inst, order, TransitionKernel::DistanceTransform);
                let fresh_dt = grid_optimum(&inst, 17, order);
                assert_eq!(reused_dt, fresh_dt, "{order:?} distance transform");
            }
        }
    }

    #[test]
    fn kernels_agree_with_large_request_sets() {
        // More requests than the kernel block width: the shared SoA
        // service scan keeps every kernel on identical per-node service
        // values, so windowed/all-pairs equality is exact even past the
        // chunk boundary (and DT stays within tie-breaking).
        let mut steps = Vec::new();
        for t in 0..3 {
            let reqs: Vec<P2> = (0..11)
                .map(|i| {
                    let a = 0.45 * (t * 11 + i) as f64;
                    P2::xy(a.cos() * 1.1, (a * 1.7).sin())
                })
                .collect();
            steps.push(Step::new(reqs));
        }
        let inst = Instance::new(2.0, 0.6, P2::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let mut dp = GridDp::new(&inst, 19);
            let full = dp.solve_with(&inst, order, TransitionKernel::AllPairs);
            let pruned = dp.solve_with(&inst, order, TransitionKernel::Windowed);
            let dt = dp.solve_with(&inst, order, TransitionKernel::DistanceTransform);
            assert_eq!(pruned, full, "{order:?}");
            assert_dt_parity(dt, full, &format!("{order:?}"));
        }
    }

    #[test]
    fn warm_prefix_solves_are_bit_equal_to_cold() {
        let steps: Vec<Step<2>> = (0..10)
            .map(|t| {
                let a = 0.7 * t as f64;
                Step::new(vec![P2::xy(a.cos(), a.sin()), P2::xy(0.3 * a.cos(), -0.5)])
            })
            .collect();
        let inst = Instance::new(2.0, 0.5, P2::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            for kernel in TransitionKernel::ALL {
                let mut warm_dp = GridDp::new(&inst, 15);
                let mut cold_dp = GridDp::new(&inst, 15);
                for t in [3usize, 5, 5, 8, 10, 4, 10] {
                    let prefix = inst.prefix(t);
                    let warm = warm_dp.solve_warm(&prefix, order, kernel);
                    cold_dp.reset_warm();
                    let cold = cold_dp.solve_warm(&prefix, order, kernel);
                    assert_eq!(
                        warm.to_bits(),
                        cold.to_bits(),
                        "{order:?} {kernel:?} T={t}: warm {warm} vs cold {cold}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_solve_survives_kernel_and_order_switches() {
        // Switching kernel or order must invalidate the journal (tie
        // bits differ between kernels), never silently reuse it.
        let steps: Vec<Step<2>> = (0..6)
            .map(|t| Step::single(P2::xy(t as f64 * 0.3, 1.0 - t as f64 * 0.2)))
            .collect();
        let inst = Instance::new(1.5, 0.4, P2::origin(), steps);
        let mut dp = GridDp::new(&inst, 13);
        for (order, kernel) in [
            (ServingOrder::MoveFirst, TransitionKernel::DistanceTransform),
            (
                ServingOrder::AnswerFirst,
                TransitionKernel::DistanceTransform,
            ),
            (ServingOrder::MoveFirst, TransitionKernel::Windowed),
            (ServingOrder::MoveFirst, TransitionKernel::DistanceTransform),
        ] {
            let warm = dp.solve_warm(&inst, order, kernel);
            let cold = GridDp::new(&inst, 13).solve_with(&inst, order, kernel);
            assert_eq!(warm.to_bits(), cold.to_bits(), "{order:?} {kernel:?}");
        }
    }

    #[test]
    fn window_never_excludes_reachable_cells_with_large_budget() {
        // Budget larger than the whole arena: the window clamps to the
        // full grid and every kernel must still agree with the all-pairs
        // scan.
        let steps = vec![
            Step::single(P2::xy(1.0, 1.0)),
            Step::single(P2::xy(-1.0, 0.5)),
        ];
        let inst = Instance::new(1.0, 50.0, P2::origin(), steps);
        let mut dp = GridDp::new(&inst, 13);
        let full = dp.solve_with(&inst, ServingOrder::MoveFirst, TransitionKernel::AllPairs);
        let pruned = dp.solve_with(&inst, ServingOrder::MoveFirst, TransitionKernel::Windowed);
        let dt = dp.solve_with(
            &inst,
            ServingOrder::MoveFirst,
            TransitionKernel::DistanceTransform,
        );
        assert_eq!(pruned, full);
        assert_dt_parity(dt, full, "large budget");
    }
}
