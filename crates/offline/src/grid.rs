//! Brute-force offline optimum on a discretized arena.
//!
//! Exhaustive dynamic programming over a regular grid: the state is the
//! server's grid cell, the transition allows every cell within the
//! movement limit. Exponential in the dimension — usable only on modest
//! instances, which is exactly its job: an independent oracle that
//! certifies the PWL and convex solvers in tests, and the denominator of
//! every measured competitive ratio off the line.
//!
//! The grid restricts OPT's positions, so [`grid_optimum`]` ≥ OPT`;
//! refining the grid converges from above. Tests compare solvers at
//! matching tolerances.
//!
//! # Transition kernels
//!
//! The DP's per-step relaxation `next[k] = min_j (base[j] + D·d(j,k))`
//! (over sources `j` within the movement reach; `base` is the frontier
//! cost, plus the service cost under Answer-First) is a pluggable
//! [`TransitionKernel`] — three implementations sharing one arena and one
//! set of allocation-free scratch buffers:
//!
//! * [`TransitionKernel::AllPairs`] — the `O(cells²)` scan over every
//!   (source, target) pair. The independent parity oracle and benchmark
//!   baseline; never the fast path.
//! * [`TransitionKernel::Windowed`] — the radius-pruned neighbor-window
//!   scan, `O(cells · windowᴺ)`: a move of length ≤ `reach` changes axis
//!   `i` by at most `⌈reach/hᵢ⌉` cells, and the exact distance check
//!   inside the window keeps the transition set *identical* to the
//!   all-pairs scan, so their results agree bit for bit.
//! * [`TransitionKernel::DistanceTransform`] — the lower-envelope
//!   distance transform, `O(cells · windowᴺ⁻¹)`: axis 0 is swept in one
//!   pass per (target row, source row) pair via the
//!   [`ConeEnvelope`] of
//!   `base[j] + D·√((x−x_j)² + C²)` (C = the fixed rest-axis offset of
//!   the row pair), which is exact because same-`C` cones cross at most
//!   once. On the line (`N = 1`) the whole step collapses to a single
//!   `O(cells)` envelope sweep — the Felzenszwalb–Huttenlocher discipline
//!   applied to the Euclidean (not squared) metric.
//!
//!   **Exactness contract.** The movement budget makes the feasible
//!   sources of a target cell a *contiguous* axis-0 index window (move
//!   distance is monotone in the index offset), so each row pair runs two
//!   interleaved incorporate-and-query sweeps: a *prefix* envelope over
//!   sources up to the window's right edge and, for the cells it leaves
//!   unresolved, a mirrored *suffix* envelope from the window's left
//!   edge. A winner that lands inside the window minimizes a superset of
//!   the window attained within it — the constrained minimum, exactly;
//!   only the rare cell whose prefix *and* suffix winners both fall
//!   outside scans its window directly. Feasibility is decided on squared
//!   distances against a precomputed threshold that reproduces the
//!   oracle's `d(j,k) ≤ reach` sqrt-compare bit for bit, and candidate
//!   values are evaluated with the oracle's own expression on the
//!   oracle's own coordinates, so the only divergence from
//!   [`TransitionKernel::AllPairs`] is tie-breaking at envelope
//!   crossovers computed in floating point — the result is never *below*
//!   the oracle's and agrees within ~1e-12 relative (pinned by proptests
//!   in `tests/transition_kernels.rs`). Improvement bounds (per pair:
//!   cheapest row base plus the `D·C` rest-offset move against the
//!   frontier maximum; per cell: a sliding-window base minimum against
//!   the cell's current value) skip only candidates that cannot strictly
//!   improve the frontier, preserving both properties. Arenas whose axis
//!   coordinates are not strictly increasing in `f64` (possible only for
//!   degenerate magnitudes where spacing falls under one ulp) are
//!   detected at construction and silently served by the windowed kernel
//!   instead.
//!
//! **DT rows fan out.** The distance-transform transition's target rows
//! are mutually independent (each reads the frozen frontier and writes
//! only its own `next` row), so the row loop fans out over the
//! [`msp_analysis::sweep`] persistent worker pool in contiguous chunks
//! with per-worker scratch ([`GridDp::set_row_threads`]; default: the
//! pool size, collapsing to one thread inside an outer sweep). The
//! chunking changes wall-clock only — the DP result is bit-identical for
//! every thread count, so the parity contracts above are unaffected.
//!
//! **Scratch is hoisted.** [`GridDp`] owns the arena (node positions in
//! array-of-structs, structure-of-arrays, and per-axis coordinate layout)
//! and every DP buffer, so repeated solves — all kernels, both serving
//! orders, δ-sweeps against one instance — are allocation-free after
//! construction, like the median solver. The per-step service costs are
//! filled by one **SoA scan per request**
//! ([`msp_geometry::soa::SoaPoints::service_costs_into`], vectorized over
//! the node columns) shared by every kernel, which accumulates in request
//! order — bit-identical per node to the scalar per-node loop it
//! replaced, so the windowed/all-pairs exact-equality contract is
//! preserved for every request count.

use crate::envelope::ConeEnvelope;
use msp_analysis::obs;
use msp_core::cost::ServingOrder;
use msp_core::model::Instance;
use msp_geometry::{Aabb, Point, SoaPoints};

/// Strategy for the grid DP's per-step transition relaxation
/// `next[k] = min_j (base[j] + D·d(j,k))`.
///
/// All kernels compute the same minima over the same transition set (every
/// source within the movement reach); they differ in how the minimum is
/// found and, consequently, in cost and in bit-level tie-breaking — see the
/// [module docs](self) for the exactness contract of each.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransitionKernel {
    /// Scan every (source, target) pair: `O(cells²)` per step. The parity
    /// oracle the other kernels are certified against.
    AllPairs,
    /// Radius-pruned neighbor-window scan: `O(cells · windowᴺ)` per step,
    /// bit-identical to [`TransitionKernel::AllPairs`].
    Windowed,
    /// Axis-swept lower-envelope distance transform:
    /// `O(cells · windowᴺ⁻¹)` per step (`O(cells)` on the line), never
    /// below and within ~1e-12 relative of the oracle. The default used
    /// by [`grid_optimum`].
    #[default]
    DistanceTransform,
}

impl TransitionKernel {
    /// Every kernel, oracle first — convenient for parity sweeps in tests.
    pub const ALL: [TransitionKernel; 3] = [
        TransitionKernel::AllPairs,
        TransitionKernel::Windowed,
        TransitionKernel::DistanceTransform,
    ];
}

/// Grid geometry shared by the transition kernels: node positions plus the
/// start-snap and movement slack described in [`grid_optimum`].
struct GridArena<const N: usize> {
    nodes: Vec<Point<N>>,
    /// The same nodes in structure-of-arrays layout, for the per-step
    /// service scan and the start-snap distance scan.
    nodes_soa: SoaPoints<N>,
    /// Per-axis node coordinates: the arena is the exact product
    /// `axis[0] × … × axis[N−1]` (axis 0 varies fastest), which is what
    /// lets the distance-transform kernel sweep one axis at a time.
    axis: [Vec<f64>; N],
    /// Whether every `axis` array is strictly increasing in `f64` — the
    /// precondition of the envelope sweep. False only for degenerate
    /// coordinate magnitudes; the DT kernel then falls back to Windowed.
    axes_strict: bool,
    /// Per-axis node spacing.
    spacing: [f64; N],
    /// Movement tolerance: `max_move` plus half a grid diagonal.
    reach: f64,
    /// Start-snap radius (half a grid diagonal).
    slack: f64,
}

/// Largest squared distance whose (correctly rounded) square root still
/// passes the oracle's `d ≤ reach` predicate — feasibility can then be
/// tested on squared distances, bit-faithfully to the oracle's
/// `sqrt`-then-compare. (IEEE `sqrt` is monotone, so the predicate is a
/// half-line in the squared value; the loops terminate within a few ulps
/// of `reach²`.)
fn sq_reach_threshold(reach: f64) -> f64 {
    let mut s = reach * reach;
    while s > 0.0 && s.sqrt() > reach {
        s = f64::from_bits(s.to_bits() - 1);
    }
    loop {
        let up = f64::from_bits(s.to_bits() + 1);
        if up.sqrt() <= reach {
            s = up;
        } else {
            break;
        }
    }
    s
}

fn build_arena<const N: usize>(instance: &Instance<N>, cells_per_axis: usize) -> GridArena<N> {
    assert!(cells_per_axis >= 2, "need at least 2 cells per axis");
    let cells = cells_per_axis.pow(N as u32);
    assert!(
        cells <= 200_000,
        "grid too large ({cells} cells); shrink the instance"
    );

    // Arena: bounding box of the start and every request, padded slightly
    // so boundary optima are representable.
    let mut bbox = Aabb::<N>::from_points(&[instance.start]);
    for step in &instance.steps {
        for v in &step.requests {
            bbox.insert(v);
        }
    }
    let pad = 0.5 * instance.max_move.max(1e-6);
    bbox = Aabb::from_corners(bbox.min - Point::splat(pad), bbox.max + Point::splat(pad));

    // Per-axis coordinates; the node set is their exact product.
    let axis: [Vec<f64>; N] = std::array::from_fn(|i| {
        (0..cells_per_axis)
            .map(|c| {
                let frac = c as f64 / (cells_per_axis - 1) as f64;
                bbox.min[i] + frac * (bbox.max[i] - bbox.min[i])
            })
            .collect()
    });
    let axes_strict = axis.iter().all(|a| a.windows(2).all(|w| w[0] < w[1]));

    // Enumerate grid nodes (axis 0 varies fastest).
    let mut nodes: Vec<Point<N>> = Vec::with_capacity(cells);
    let mut idx = [0usize; N];
    loop {
        let mut p = Point::<N>::origin();
        for i in 0..N {
            p[i] = axis[i][idx[i]];
        }
        nodes.push(p);
        // Odometer increment.
        let mut i = 0;
        loop {
            idx[i] += 1;
            if idx[i] < cells_per_axis {
                break;
            }
            idx[i] = 0;
            i += 1;
            if i == N {
                break;
            }
        }
        if i == N {
            break;
        }
    }

    // Movement tolerance: half a grid diagonal so the discretized path is
    // not starved by rounding.
    let mut spacing = [0.0f64; N];
    let mut diag2 = 0.0;
    for (i, s) in spacing.iter_mut().enumerate() {
        let h = (bbox.max[i] - bbox.min[i]) / (cells_per_axis - 1) as f64;
        *s = h;
        diag2 += h * h;
    }
    let slack = diag2.sqrt() * 0.51;
    let reach = instance.max_move + slack;

    let nodes_soa = SoaPoints::from_points(&nodes);
    GridArena {
        nodes,
        nodes_soa,
        axis,
        axes_strict,
        spacing,
        reach,
        slack,
    }
}

/// A reusable grid-DP solver: arena geometry and every DP buffer are
/// built once, so repeated solves against the same instance (all
/// [`TransitionKernel`]s, both serving orders, resolution studies over δ)
/// are allocation-free — the `MedianSolver` discipline applied to the
/// offline oracle.
///
/// One-shot pricing goes through [`grid_optimum`] /
/// [`grid_optimum_unpruned`]; sweeps solving repeatedly should hold a
/// `GridDp` and call [`GridDp::solve_with`].
pub struct GridDp<const N: usize> {
    arena: GridArena<N>,
    cells_per_axis: usize,
    /// Signature of the construction instance (start, `max_move`, `d`,
    /// horizon), used to catch mismatched solve calls in debug builds.
    built_for: (Point<N>, f64, f64, usize),
    /// DP cost of the current frontier, per node.
    cost: Vec<f64>,
    /// DP cost of the next frontier, per node.
    next: Vec<f64>,
    /// Per-node service cost of the current step.
    serve: Vec<f64>,
    /// Squared-distance scratch for the start snap.
    dist_sq: Vec<f64>,
    /// DT scratch: per-source transition base cost (`cost`, plus `serve`
    /// under Answer-First).
    base: Vec<f64>,
    /// DT scratch: per-row prefix counts of finite `base` entries
    /// (`rows × (n₀+1)` layout) — O(1) dead-row and dead-window checks.
    finite_pref: Vec<u32>,
    /// DT scratch: per-row minimum of `base` (∞ for dead rows) — the
    /// whole-pair skip bound.
    row_min: Vec<f64>,
    /// DT scratch: one [`DtScratch`] per row-fan worker (grown lazily to
    /// the fan width; index 0 serves the sequential path).
    dt_scratch: Vec<DtScratch>,
    /// Worker threads for the per-target-row fan of the
    /// distance-transform transition (0 = the sweep pool size; nested
    /// inside another sweep everything runs on the current worker). See
    /// [`GridDp::set_row_threads`].
    row_threads: usize,
}

/// Per-worker scratch of the distance-transform row fan: everything one
/// target row needs beyond the shared read-only step context. Rows are
/// independent (each writes only its own `next` slice), so giving every
/// worker chunk its own scratch makes the fan embarrassingly parallel
/// while keeping the per-row arithmetic — and therefore the result —
/// bit-identical to the sequential sweep for any thread count.
struct DtScratch {
    /// The admissible (C², source row) pairs of one target row, sorted by
    /// ascending rest offset.
    pair_buf: Vec<(f64, usize)>,
    /// Per-cell sweep state for one row pair — resolved, or the feasible
    /// right edge deferred to the suffix sweep.
    mark: Vec<u32>,
    /// Monotone deque for the sliding-window base minimum (the per-cell
    /// improvement bound).
    minq: Vec<u32>,
    /// The reusable axis-0 lower envelope.
    env: ConeEnvelope,
}

impl DtScratch {
    fn new(n0: usize) -> Self {
        DtScratch {
            pair_buf: Vec::new(),
            mark: vec![0; n0],
            minq: Vec::with_capacity(n0),
            env: ConeEnvelope::with_capacity(n0),
        }
    }
}

/// Read-only per-step context shared by every target row of one
/// distance-transform transition: the frozen DP inputs ([`GridDp`]
/// buffers filled by the sequential prologue) plus the arena geometry.
/// `Sync` by construction (shared references only), which is what lets
/// the row fan borrow it across workers.
struct DtStep<'a, const N: usize> {
    n0: usize,
    d: f64,
    /// Axis-0 node coordinates.
    x0: &'a [f64],
    /// Axis-0 spacing.
    h0: f64,
    axis: &'a [Vec<f64>; N],
    nodes: &'a [Point<N>],
    /// Per-source transition base cost (`cost`, plus `serve` under
    /// Answer-First).
    base: &'a [f64],
    /// Per-row prefix counts of finite `base` entries.
    pref: &'a [u32],
    /// Per-row minimum of `base`.
    row_min: &'a [f64],
    window: &'a [usize; N],
    r2max: f64,
    r2win: f64,
}

impl<const N: usize> GridDp<N> {
    /// Builds the solver for `instance` on a `cells_per_axis`-per-axis
    /// grid. The solver is tied to this instance's arena — pass the same
    /// instance to [`GridDp::solve_with`].
    ///
    /// # Panics
    /// Panics when the grid would be degenerate (`cells_per_axis < 2`) or
    /// infeasibly large (> 200k cells) — this is a test oracle, not a
    /// solver.
    pub fn new(instance: &Instance<N>, cells_per_axis: usize) -> Self {
        let arena = build_arena(instance, cells_per_axis);
        let n = arena.nodes.len();
        let rows = n / cells_per_axis;
        GridDp {
            arena,
            cells_per_axis,
            built_for: (
                instance.start,
                instance.max_move,
                instance.d,
                instance.horizon(),
            ),
            cost: vec![0.0; n],
            next: vec![0.0; n],
            serve: vec![0.0; n],
            dist_sq: vec![0.0; n],
            base: vec![0.0; n],
            finite_pref: vec![0; rows * (cells_per_axis + 1)],
            row_min: vec![0.0; rows],
            dt_scratch: vec![DtScratch::new(cells_per_axis)],
            row_threads: 0,
        }
    }

    /// Sets the worker-thread request of the distance-transform kernel's
    /// per-target-row fan: `0` (the default) fans rows over the
    /// [`msp_analysis::sweep`] pool, `1` forces the sequential sweep, any
    /// other value requests that many workers (served by at most the
    /// pool). The fan changes wall-clock only — per-row arithmetic is
    /// independent of the chunking, so the DP result is **bit-identical**
    /// for every setting (pinned by tests), and solves nested inside
    /// another sweep collapse to one thread regardless.
    pub fn set_row_threads(&mut self, threads: usize) -> &mut Self {
        self.row_threads = threads;
        self
    }

    /// Debug-build guard against solving a different instance than the
    /// one the arena was derived from (a silent wrong answer otherwise).
    fn check_instance(&self, instance: &Instance<N>) {
        debug_assert!(
            self.built_for.0 == instance.start
                && self.built_for.1 == instance.max_move
                && self.built_for.2 == instance.d
                && self.built_for.3 == instance.horizon(),
            "GridDp solved against a different instance than it was built for"
        );
    }

    /// Initial DP costs: the server must begin at `start`, which may be
    /// off-grid — allow a free snap of at most `slack`.
    fn reset_initial_costs(&mut self, start: &Point<N>) {
        self.arena
            .nodes_soa
            .distances_sq_into(start, &mut self.dist_sq);
        let mut any = false;
        for (c, &d2) in self.cost.iter_mut().zip(&self.dist_sq) {
            if d2.sqrt() <= self.arena.slack {
                *c = 0.0;
                any = true;
            } else {
                *c = f64::INFINITY;
            }
        }
        if !any {
            // Extremely coarse grid: snap to the nearest node
            // unconditionally.
            let (j, _) = self
                .dist_sq
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            self.cost[j] = 0.0;
        }
    }

    /// Per-node service cost of one step: one blocked SoA scan over the
    /// node columns, accumulating requests in order (bit-identical per
    /// node to the scalar `Σ_r d(node, v_r)` loop). Shared by every
    /// kernel so their transition minima see the same values.
    fn fill_service_costs(&mut self, requests: &[Point<N>]) {
        self.arena
            .nodes_soa
            .service_costs_into(requests, &mut self.serve);
    }

    /// Per-axis neighbor window: a move of length ≤ `reach` changes axis
    /// `i` by at most `⌈reach/hᵢ⌉` cells. The window over-approximates
    /// the Euclidean ball; exact distance checks inside the kernels keep
    /// the transition set identical to the all-pairs scan.
    fn axis_windows(&self) -> [usize; N] {
        let n0 = self.cells_per_axis;
        let mut window = [0usize; N];
        for (w, &h) in window.iter_mut().zip(&self.arena.spacing) {
            *w = if h > 0.0 {
                ((self.arena.reach / h).ceil() as usize).min(n0 - 1)
            } else {
                n0 - 1
            };
        }
        window
    }

    /// Runs the DP over the instance's steps with the given transition
    /// kernel and returns the optimal total cost.
    ///
    /// `instance` must be the one the solver was built for: the arena
    /// (node grid, movement reach, start-snap slack) was derived from its
    /// bounding box and `max_move` at construction. Debug builds assert a
    /// signature match (start, `max_move`, `D`, horizon); release builds
    /// do not re-validate — a mismatched instance is priced on the wrong
    /// arena. The one-shot wrappers enforce the pairing.
    pub fn solve_with(
        &mut self,
        instance: &Instance<N>,
        order: ServingOrder,
        kernel: TransitionKernel,
    ) -> f64 {
        self.check_instance(instance);
        obs::incr(obs::Counter::GridSolves);
        let kernel = match kernel {
            // Degenerate float grids (spacing under one ulp) cannot host
            // the envelope sweep; serve them with the windowed scan.
            TransitionKernel::DistanceTransform if !self.arena.axes_strict => {
                TransitionKernel::Windowed
            }
            k => k,
        };
        self.reset_initial_costs(&instance.start);
        let window = self.axis_windows();
        for step in &instance.steps {
            obs::incr(obs::Counter::GridSteps);
            let step_span = obs::timer(obs::Hist::GridStepNs);
            self.fill_service_costs(&step.requests);
            match kernel {
                TransitionKernel::AllPairs => self.transition_all_pairs(instance.d, order),
                TransitionKernel::Windowed => self.transition_windowed(instance.d, order, &window),
                TransitionKernel::DistanceTransform => {
                    self.transition_distance_transform(instance.d, order, &window)
                }
            }
            step_span.stop();
            std::mem::swap(&mut self.cost, &mut self.next);
        }
        self.cost.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Radius-pruned neighbor-window DP ([`TransitionKernel::Windowed`]);
    /// kept as the historical name for the exact-equality fast path.
    pub fn solve(&mut self, instance: &Instance<N>, order: ServingOrder) -> f64 {
        self.solve_with(instance, order, TransitionKernel::Windowed)
    }

    /// The original all-pairs transition scan
    /// ([`TransitionKernel::AllPairs`]), retained as the independent
    /// baseline every other kernel is certified against — and as the
    /// "before" side of the DP benchmarks.
    pub fn solve_unpruned(&mut self, instance: &Instance<N>, order: ServingOrder) -> f64 {
        self.solve_with(instance, order, TransitionKernel::AllPairs)
    }

    /// One step of the all-pairs transition scan: `cost`/`serve` →
    /// `next`.
    fn transition_all_pairs(&mut self, d: f64, order: ServingOrder) {
        let inf = f64::INFINITY;
        let (cost, next, serve) = (&self.cost, &mut self.next, &self.serve);
        let nodes = &self.arena.nodes;
        let reach = self.arena.reach;
        let mut scanned = 0u64;
        for c in next.iter_mut() {
            *c = inf;
        }
        for (j, pj) in nodes.iter().enumerate() {
            if cost[j].is_infinite() {
                continue;
            }
            scanned += nodes.len() as u64;
            for (k, pk) in nodes.iter().enumerate() {
                let move_dist = pj.distance(pk);
                if move_dist > reach {
                    continue;
                }
                let c = match order {
                    ServingOrder::MoveFirst => cost[j] + d * move_dist + serve[k],
                    ServingOrder::AnswerFirst => cost[j] + serve[j] + d * move_dist,
                };
                if c < next[k] {
                    next[k] = c;
                }
            }
        }
        obs::add(obs::Counter::GridAllPairsCells, scanned);
    }

    /// One step of the radius-pruned neighbor-window scan: for each live
    /// source, scatter into the per-axis window around it. The exact
    /// distance check keeps the transition set identical to the all-pairs
    /// scan.
    fn transition_windowed(&mut self, d: f64, order: ServingOrder, window: &[usize; N]) {
        let inf = f64::INFINITY;
        let cells_per_axis = self.cells_per_axis;
        let (cost, next, serve) = (&self.cost, &mut self.next, &self.serve);
        let nodes = &self.arena.nodes;
        let reach = self.arena.reach;
        let mut stride = [1usize; N];
        for i in 1..N {
            stride[i] = stride[i - 1] * cells_per_axis;
        }
        for c in next.iter_mut() {
            *c = inf;
        }
        let mut scanned = 0u64;
        for (j, pj) in nodes.iter().enumerate() {
            if cost[j].is_infinite() {
                continue;
            }
            // Decode j's cell coordinates and clamp the window per axis.
            let mut lo = [0usize; N];
            let mut hi = [0usize; N];
            let mut cur = [0usize; N];
            let mut vol = 1u64;
            for i in 0..N {
                let c = (j / stride[i]) % cells_per_axis;
                lo[i] = c.saturating_sub(window[i]);
                hi[i] = (c + window[i]).min(cells_per_axis - 1);
                cur[i] = lo[i];
                vol *= (hi[i] - lo[i] + 1) as u64;
            }
            scanned += vol;
            // Odometer over the neighbor box.
            loop {
                let mut k = 0usize;
                for i in 0..N {
                    k += cur[i] * stride[i];
                }
                let pk = &nodes[k];
                let move_dist = pj.distance(pk);
                if move_dist <= reach {
                    let c = match order {
                        ServingOrder::MoveFirst => cost[j] + d * move_dist + serve[k],
                        ServingOrder::AnswerFirst => cost[j] + serve[j] + d * move_dist,
                    };
                    if c < next[k] {
                        next[k] = c;
                    }
                }
                // Advance the odometer.
                let mut i = 0;
                loop {
                    cur[i] += 1;
                    if cur[i] <= hi[i] {
                        break;
                    }
                    cur[i] = lo[i];
                    i += 1;
                    if i == N {
                        break;
                    }
                }
                if i == N {
                    break;
                }
            }
        }
        obs::add(obs::Counter::GridWindowedCells, scanned);
    }

    /// One step of the lower-envelope distance transform. See the
    /// [module docs](self) for the decomposition and the exactness
    /// argument; in brief: per (target row, source row) pair, the set of
    /// sources within the movement reach of a target cell is a contiguous
    /// axis-0 index window (move distance is monotone in the index
    /// offset), so two interleaved incorporate-and-query sweeps — a
    /// *prefix* envelope over sources up to the window's right edge and a
    /// *suffix* envelope over sources from its left edge — resolve the
    /// constrained minimum exactly: a prefix winner inside the window
    /// minimizes a superset attained in the window (likewise the suffix),
    /// and only the rare cell whose both winners fall outside scans its
    /// window directly. Feasibility is tested on squared distances
    /// against [`sq_reach_threshold`], bit-faithful to the oracle's
    /// `d(j,k) ≤ reach` predicate.
    ///
    /// Target rows are mutually independent — each reads only the frozen
    /// step inputs and writes only its own `next` slice — so the row loop
    /// fans out over the [`msp_analysis::sweep`] pool in contiguous
    /// chunks, one [`DtScratch`] per worker chunk ([`GridDp::set_row_threads`]
    /// sizes the fan). Per-row arithmetic does not depend on the
    /// chunking, so the transition result is bit-identical for every
    /// thread count.
    fn transition_distance_transform(&mut self, d: f64, order: ServingOrder, window: &[usize; N]) {
        let n0 = self.cells_per_axis;
        let cells = self.cost.len();
        let rows = cells / n0;

        // Sequential prologue — transition base costs: what a source
        // contributes before the move term. Mirrors the oracle's
        // expression evaluation order so admitted candidates are priced
        // bit-identically.
        {
            let cost = &self.cost;
            let serve = &self.serve;
            let base = &mut self.base;
            match order {
                ServingOrder::MoveFirst => base.copy_from_slice(cost),
                ServingOrder::AnswerFirst => {
                    for ((b, &c), &sv) in base.iter_mut().zip(cost).zip(serve) {
                        *b = c + sv;
                    }
                }
            }

            // Per-row prefix counts of finite sources (O(1) dead-row
            // tests) and per-row base minima (the whole-pair skip bound).
            let pref = &mut self.finite_pref;
            let row_min = &mut self.row_min;
            for (r, rmin_out) in row_min.iter_mut().enumerate().take(rows) {
                let pbase = r * (n0 + 1);
                let sbase = r * n0;
                pref[pbase] = 0;
                let mut rmin = f64::INFINITY;
                for i in 0..n0 {
                    let b = base[sbase + i];
                    pref[pbase + i + 1] = pref[pbase + i] + u32::from(b.is_finite());
                    if b < rmin {
                        rmin = b;
                    }
                }
                *rmin_out = rmin;
            }
        }

        for c in self.next.iter_mut() {
            *c = f64::INFINITY;
        }

        // Feasibility thresholds on squared distances. For N ≤ 2 the
        // separable square `Δ0² + C²` is bit-identical to the oracle's
        // left-associated axis sum, so `r2win = r2max` decides
        // feasibility exactly. For N ≥ 3 the separable square may differ
        // from the oracle's sum by reassociation ulps, so the window
        // uses a hair-inflated threshold (a guaranteed superset of the
        // oracle's transition set) and winners re-check with the
        // oracle's own accumulation order before being admitted.
        let r2max = sq_reach_threshold(self.arena.reach);
        let r2win = if N <= 2 { r2max } else { r2max * (1.0 + 1e-12) };

        let threads = msp_analysis::sweep::effective_threads(self.row_threads)
            .min(rows)
            .max(1);
        while self.dt_scratch.len() < threads {
            self.dt_scratch.push(DtScratch::new(n0));
        }

        let ctx = DtStep {
            n0,
            d,
            x0: &self.arena.axis[0][..],
            h0: self.arena.spacing[0],
            axis: &self.arena.axis,
            nodes: &self.arena.nodes,
            base: &self.base,
            pref: &self.finite_pref,
            row_min: &self.row_min,
            window,
            r2max,
            r2win,
        };
        let next = &mut self.next[..];
        let dt_scratch = &mut self.dt_scratch[..];

        if threads <= 1 {
            let scratch = &mut dt_scratch[0];
            for (rt, nrow) in next.chunks_mut(n0).enumerate() {
                dt_row(&ctx, rt, nrow, scratch);
            }
        } else {
            // Contiguous row chunks, one per worker, each with its own
            // scratch — the fan-out shape the sweep pool serves without a
            // per-step spawn/join barrier.
            let per = rows.div_ceil(threads);
            let mut items: Vec<(usize, &mut [f64], &mut DtScratch)> = next
                .chunks_mut(per * n0)
                .zip(dt_scratch.iter_mut())
                .enumerate()
                .map(|(c, (chunk, scratch))| (c * per, chunk, scratch))
                .collect();
            msp_analysis::sweep::parallel_for_each_mut(&mut items, threads, |_, item| {
                let (row0, chunk, scratch) = item;
                for (ri, nrow) in chunk.chunks_mut(ctx.n0).enumerate() {
                    dt_row(&ctx, *row0 + ri, nrow, scratch);
                }
            });
        }

        // Move-First serves from the target cell: add the service term
        // after the min (rounding is monotone, so min-then-add matches
        // the oracle's add-then-min bit for bit; ∞ stays ∞).
        if matches!(order, ServingOrder::MoveFirst) {
            for (nx, &sv) in self.next.iter_mut().zip(self.serve.iter()) {
                *nx += sv;
            }
        }
    }
}

/// One target row of the distance-transform transition: the
/// prefix/suffix envelope sweeps over every admissible source row of the
/// rest-axis window, writing the row's relaxed costs into `nrow` (the
/// row's slice of the `next` frontier). Pure function of the frozen
/// [`DtStep`] inputs — the unit the row fan parallelizes over.
fn dt_row<const N: usize>(
    ctx: &DtStep<'_, N>,
    rt: usize,
    nrow: &mut [f64],
    scratch: &mut DtScratch,
) {
    let DtStep {
        n0,
        d,
        x0,
        h0,
        axis,
        nodes,
        base,
        pref,
        row_min,
        window,
        r2max,
        r2win,
    } = *ctx;
    let DtScratch {
        pair_buf,
        mark,
        minq,
        env,
    } = scratch;

    /// Cell marker: resolved by the prefix sweep (or no action
    /// needed); any other value is the cell's feasible right edge,
    /// left for the suffix sweep.
    const DONE: u32 = u32::MAX;

    // Metrics-only tallies, flushed to the registry once per row so the
    // hot sweeps touch no atomics.
    let dt_pairs;
    let mut suffix_cells = 0u64;
    let mut brute_cells = 0u64;

    {
        // Decode the target row's rest-axis indices and clamp the
        // per-axis source window (axes 1..N live in row space with
        // stride n0^(i-1)), then collect the admissible source rows.
        let mut t_rest = [0usize; N];
        let mut lo = [0usize; N];
        let mut hi = [0usize; N];
        let mut cur = [0usize; N];
        {
            let mut stride = 1usize;
            for i in 0..N.saturating_sub(1) {
                let ti = (rt / stride) % n0;
                t_rest[i] = ti;
                lo[i] = ti.saturating_sub(window[i + 1]);
                hi[i] = (ti + window[i + 1]).min(n0 - 1);
                cur[i] = lo[i];
                stride *= n0;
            }
        }
        pair_buf.clear();
        // Odometer over the source rows of the rest-axis window (a
        // single pass when N = 1: the line has one row pair). A pair
        // with C² > r2win is wholly infeasible (every move distance
        // is at least C), matching the oracle's per-candidate reach
        // rejections; dead rows are skipped via the prefix counts.
        loop {
            let mut rs = 0usize;
            let mut c2 = 0.0f64;
            {
                let mut stride = 1usize;
                for i in 0..N.saturating_sub(1) {
                    rs += cur[i] * stride;
                    let dx = axis[i + 1][t_rest[i]] - axis[i + 1][cur[i]];
                    c2 += dx * dx;
                    stride *= n0;
                }
            }
            if c2 <= r2win && pref[rs * (n0 + 1) + n0] > 0 {
                pair_buf.push((c2, rs));
            }
            // Advance the row odometer.
            let mut i = 0;
            while i < N.saturating_sub(1) {
                cur[i] += 1;
                if cur[i] <= hi[i] {
                    break;
                }
                cur[i] = lo[i];
                i += 1;
            }
            if i == N.saturating_sub(1) {
                break;
            }
        }
        // Nearest rows first: the frontier row tightens early, so the
        // rim pairs usually fail the improvement bound outright.
        pair_buf.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        dt_pairs = pair_buf.len() as u64;

        let tbase = rt * n0;
        for &(c2, rs) in pair_buf.iter() {
            let sbase = rs * n0;
            // Whole-pair skip: every candidate of this pair costs at
            // least the row's cheapest base plus the D·C rest-offset
            // move — if that cannot beat the worst frontier cell, no
            // cell can improve. (Skipping non-improving candidates
            // keeps the DT result within tie-level slop of the
            // oracle, and never below it.)
            let pair_floor = row_min[rs] + d * c2.sqrt();
            let frontier_max = nrow.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if pair_floor >= frontier_max {
                continue;
            }

            // Separable squared move distance (bit-identical to the
            // oracle's sum for N ≤ 2; a window superset otherwise).
            let d2_sep = |j0: usize, k0: usize| -> f64 {
                let dx = x0[k0] - x0[j0];
                dx * dx + c2
            };
            // The oracle's own squared sum, for N ≥ 3 re-checks.
            let d2_exact = |j0: usize, k0: usize| -> f64 {
                let a = &nodes[sbase + j0];
                let b = &nodes[tbase + k0];
                let mut s = 0.0;
                for i in 0..N {
                    let t = a[i] - b[i];
                    s += t * t;
                }
                s
            };
            // Admits `j0` for `k0` iff the oracle would; returns the
            // candidate value (the oracle's expression) or None.
            let admit = |j0: usize, k0: usize| -> Option<f64> {
                if N <= 2 {
                    Some(base[sbase + j0] + d * d2_sep(j0, k0).sqrt())
                } else {
                    let d2 = d2_exact(j0, k0);
                    (d2 <= r2max).then(|| base[sbase + j0] + d * d2.sqrt())
                }
            };
            // Window scan for the rare cell neither sweep resolves:
            // every index in [a, b] is window-feasible; N ≥ 3
            // re-checks exactly via `admit`.
            let brute = |a: usize, b: usize, k0: usize, cur: f64| -> f64 {
                let mut best = cur;
                for jf in a..=b {
                    if !base[sbase + jf].is_finite() {
                        continue;
                    }
                    if let Some(cand) = admit(jf, k0) {
                        if cand < best {
                            best = cand;
                        }
                    }
                }
                best
            };

            // Sources whose base plus the D·C rest-offset move
            // already matches the frontier can improve no cell;
            // excluding them from the envelopes is safe (the
            // superset-resolution argument only ever compares
            // admitted winners against `nrow`) and skips their
            // crossover arithmetic.
            let dc = d * c2.sqrt();
            let src_cut = frontier_max - dc;

            // Per-cell improvement bound: a sliding-window minimum of
            // `base` over a superset of the feasible index window (a
            // monotone deque, no square roots). A cell where even
            // `winmin + D·C` cannot beat the frontier value admits no
            // improving candidate from this pair — the common case
            // for rim pairs once the DP saturates.
            let wq = if h0 > 0.0 {
                (((r2win - c2).max(0.0).sqrt() / h0).ceil() as usize + 1).min(n0 - 1)
            } else {
                n0 - 1
            };
            minq.clear();
            let mut qhead = 0usize;
            for j in 0..=wq.min(n0 - 1) {
                let b = base[sbase + j];
                while minq.len() > qhead && base[sbase + *minq.last().unwrap() as usize] >= b {
                    minq.pop();
                }
                minq.push(j as u32);
            }

            // ---- Prefix sweep: envelope of sources j ≤ feasible
            // right edge, queried left to right. Both edge pointers
            // are monotone (amortized O(n0) squared-distance tests;
            // the center j0 = k0 is always feasible since C² ≤ r2win).
            env.begin(d, c2);
            let mut af = 0usize; // left feasibility edge
            let mut bf = 0usize; // sources incorporated: j < bf
            let mut unresolved = 0usize;
            let mut min_unres = n0;
            let mut max_unres = 0usize;
            for k0 in 0..n0 {
                // Slide the base-min window: admit j = k0 + wq, evict
                // the front once it falls left of k0 - wq.
                if k0 > 0 && k0 + wq < n0 {
                    let j = k0 + wq;
                    let b = base[sbase + j];
                    while minq.len() > qhead && base[sbase + *minq.last().unwrap() as usize] >= b {
                        minq.pop();
                    }
                    minq.push(j as u32);
                }
                while (minq[qhead] as usize) + wq < k0 {
                    qhead += 1;
                }
                while d2_sep(af, k0) > r2win {
                    af += 1;
                }
                while bf < n0 && d2_sep(bf, k0) <= r2win {
                    if base[sbase + bf] < src_cut {
                        env.push(bf, x0[bf], base[sbase + bf]);
                    }
                    bf += 1;
                }
                debug_assert!(af <= k0 && bf > k0);
                if base[sbase + minq[qhead] as usize] + dc >= nrow[k0] {
                    // No candidate of this pair can improve the cell.
                    mark[k0] = DONE;
                    continue;
                }
                match env.query_at(x0[k0]) {
                    Some(jp) if jp >= af => {
                        // Winner inside the window: it minimizes the
                        // prefix superset, so it is the window min.
                        match admit(jp, k0) {
                            Some(cand) => {
                                if cand < nrow[k0] {
                                    nrow[k0] = cand;
                                }
                                mark[k0] = DONE;
                            }
                            None => {
                                // N ≥ 3 ulp-band winner: resolve by
                                // the exact window scan.
                                brute_cells += (bf - af) as u64;
                                nrow[k0] = brute(af, bf - 1, k0, nrow[k0]);
                                mark[k0] = DONE;
                            }
                        }
                    }
                    _ => {
                        // Winner left of the window (or no live
                        // prefix source): defer to the suffix sweep.
                        mark[k0] = (bf - 1) as u32;
                        unresolved += 1;
                        min_unres = min_unres.min(k0);
                        max_unres = k0;
                    }
                }
            }

            // ---- Suffix sweep: envelope of sources j ≥ feasible
            // left edge, queried right to left — mirrored via negated
            // abscissas. Only the deferred index range is walked, and
            // sources right of the largest deferred cell's right edge
            // are omitted (no deferred cell could admit them).
            suffix_cells += unresolved as u64;
            if unresolved > 0 {
                env.begin(d, c2);
                let mut af2 = max_unres + 1; // left feasibility edge
                let mut inc = mark[max_unres] as usize + 1; // sources incorporated: j ≥ inc
                for k0 in (min_unres..=max_unres).rev() {
                    if unresolved == 0 {
                        break;
                    }
                    while af2 > 0 && d2_sep(af2 - 1, k0) <= r2win {
                        af2 -= 1;
                    }
                    while inc > af2 {
                        inc -= 1;
                        env.push(inc, -x0[inc], base[sbase + inc]);
                    }
                    let m = mark[k0];
                    if m == DONE {
                        continue;
                    }
                    unresolved -= 1;
                    let bfk = m as usize;
                    match env.query_at(-x0[k0]) {
                        Some(js) if js <= bfk => match admit(js, k0) {
                            Some(cand) => {
                                if cand < nrow[k0] {
                                    nrow[k0] = cand;
                                }
                            }
                            None => {
                                brute_cells += (bfk + 1 - af2) as u64;
                                nrow[k0] = brute(af2, bfk, k0, nrow[k0]);
                            }
                        },
                        _ => {
                            // Both winners outside the window (or no
                            // live source): exact scan.
                            brute_cells += (bfk + 1 - af2) as u64;
                            nrow[k0] = brute(af2, bfk, k0, nrow[k0]);
                        }
                    }
                }
            }
        }
    }

    if obs::enabled() {
        obs::incr(obs::Counter::GridDtRows);
        obs::add(obs::Counter::GridDtPairs, dt_pairs);
        obs::add(obs::Counter::GridDtSuffixCells, suffix_cells);
        obs::add(obs::Counter::GridDtBruteCells, brute_cells);
    }
}

/// Exhaustive DP optimum over a `cells_per_axis`-per-dimension grid
/// covering the instance's bounding box (start + all requests), using the
/// fast [`TransitionKernel::DistanceTransform`] kernel (never below, and
/// within ~1e-12 relative of, the all-pairs oracle — see the
/// [module docs](self)). One-shot wrapper over [`GridDp`]; sweeps solving
/// repeatedly should hold a `GridDp` and reuse its buffers.
///
/// ```
/// use msp_core::cost::ServingOrder;
/// use msp_core::model::{Instance, Step};
/// use msp_geometry::P2;
///
/// // Two steps on the plane: requests pull the server up-right.
/// let steps = vec![
///     Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
///     Step::new(vec![P2::xy(1.0, 1.0)]),
/// ];
/// let inst = Instance::new(2.0, 0.5, P2::origin(), steps);
/// let opt = msp_offline::grid_optimum(&inst, 31, ServingOrder::MoveFirst);
/// // The offline optimum is finite and certainly no more than serving
/// // everything from the start without moving.
/// let stay_home: f64 = inst.steps.iter()
///     .flat_map(|s| s.requests.iter().map(|r| r.distance(&inst.start)))
///     .sum();
/// assert!(opt > 0.0 && opt <= stay_home + 1e-9);
/// ```
///
/// # Panics
/// Panics when the grid would be degenerate (`cells_per_axis < 2`) or
/// infeasibly large (> 200k cells) — this is a test oracle, not a
/// solver.
pub fn grid_optimum<const N: usize>(
    instance: &Instance<N>,
    cells_per_axis: usize,
    order: ServingOrder,
) -> f64 {
    GridDp::new(instance, cells_per_axis).solve_with(
        instance,
        order,
        TransitionKernel::DistanceTransform,
    )
}

/// One-shot wrapper over [`TransitionKernel::AllPairs`], the parity
/// oracle of [`grid_optimum`] and of every other kernel.
///
/// # Panics
/// Same contract as [`grid_optimum`].
pub fn grid_optimum_unpruned<const N: usize>(
    instance: &Instance<N>,
    cells_per_axis: usize,
    order: ServingOrder,
) -> f64 {
    GridDp::new(instance, cells_per_axis).solve_unpruned(instance, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::solve_line;
    use msp_core::model::Step;
    use msp_geometry::{P1, P2};

    /// DT may differ from the oracle only by envelope tie-breaking: never
    /// below, and within a hair relative.
    fn assert_dt_parity(dt: f64, oracle: f64, ctx: &str) {
        if oracle.is_finite() {
            assert!(dt >= oracle, "{ctx}: dt {dt} undercuts oracle {oracle}");
            assert!(
                (dt - oracle).abs() <= 1e-9 * (1.0 + oracle.abs()),
                "{ctx}: dt {dt} vs oracle {oracle}"
            );
        } else {
            assert!(dt.is_infinite(), "{ctx}: dt {dt} vs infinite oracle");
        }
    }

    #[test]
    fn matches_exact_line_solver_on_small_instance() {
        let steps = vec![
            Step::single(P1::new([2.0])),
            Step::single(P1::new([2.0])),
            Step::single(P1::new([-1.0])),
            Step::single(P1::new([0.5])),
        ];
        let inst = Instance::new(2.0, 1.0, P1::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let exact = solve_line(&inst, order).cost;
            let grid = grid_optimum(&inst, 241, order);
            assert!(
                (grid - exact).abs() < 0.12,
                "{order:?}: grid {grid} vs exact {exact}"
            );
            // The grid never undercuts the true optimum by more than the
            // start-snap slack.
            assert!(grid >= exact - 0.1);
        }
    }

    #[test]
    fn planar_triangle_instance_is_consistent_across_resolutions() {
        let steps = vec![
            Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
            Step::new(vec![P2::xy(1.0, 1.0)]),
        ];
        let inst = Instance::new(1.0, 0.7, P2::origin(), steps);
        let coarse = grid_optimum(&inst, 15, ServingOrder::MoveFirst);
        let fine = grid_optimum(&inst, 41, ServingOrder::MoveFirst);
        // Refinement should not increase the optimum by much (monotone up
        // to snap slack) and both must be finite.
        assert!(fine.is_finite() && coarse.is_finite());
        assert!(fine <= coarse + 0.2, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn zero_steps_cost_zero() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        assert_eq!(grid_optimum(&inst, 5, ServingOrder::MoveFirst), 0.0);
    }

    #[test]
    #[should_panic(expected = "grid too large")]
    fn oversize_grid_rejected() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        let _ = grid_optimum(&inst, 500, ServingOrder::MoveFirst);
    }

    #[test]
    fn kernels_agree_on_the_line() {
        let steps = vec![
            Step::single(P1::new([2.0])),
            Step::new(vec![P1::new([-1.5]), P1::new([1.0])]),
            Step::new(vec![]),
            Step::single(P1::new([0.25])),
        ];
        let inst = Instance::new(1.5, 0.8, P1::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            for cells in [17, 65, 129] {
                let mut dp = GridDp::new(&inst, cells);
                let full = dp.solve_with(&inst, order, TransitionKernel::AllPairs);
                let pruned = dp.solve_with(&inst, order, TransitionKernel::Windowed);
                let dt = dp.solve_with(&inst, order, TransitionKernel::DistanceTransform);
                assert_eq!(
                    pruned, full,
                    "{order:?} cells={cells}: windowed {pruned} vs all-pairs {full}"
                );
                assert_dt_parity(dt, full, &format!("{order:?} cells={cells}"));
            }
        }
    }

    #[test]
    fn kernels_agree_on_the_plane() {
        let steps = vec![
            Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
            Step::new(vec![P2::xy(1.2, 1.1)]),
            Step::new(vec![P2::xy(-0.5, 0.6), P2::xy(0.9, -0.4)]),
        ];
        let inst = Instance::new(2.0, 0.6, P2::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            for cells in [9, 21, 33] {
                let mut dp = GridDp::new(&inst, cells);
                let full = dp.solve_with(&inst, order, TransitionKernel::AllPairs);
                let pruned = dp.solve_with(&inst, order, TransitionKernel::Windowed);
                let dt = dp.solve_with(&inst, order, TransitionKernel::DistanceTransform);
                assert_eq!(
                    pruned, full,
                    "{order:?} cells={cells}: windowed {pruned} vs all-pairs {full}"
                );
                assert_dt_parity(dt, full, &format!("{order:?} cells={cells}"));
            }
        }
    }

    #[test]
    fn reused_solver_matches_one_shot_wrappers() {
        // One GridDp, solved repeatedly across both orders and every
        // kernel: every reuse must reproduce the fresh-solver result
        // exactly (buffer hoisting is a pure allocation optimization).
        let steps = vec![
            Step::new(vec![P2::xy(0.8, 0.2), P2::xy(-0.3, 1.0)]),
            Step::new(vec![P2::xy(1.1, -0.6)]),
            Step::new(vec![]),
            Step::new(vec![P2::xy(0.1, 0.4), P2::xy(0.9, 0.9), P2::xy(-0.5, 0.0)]),
        ];
        let inst = Instance::new(1.5, 0.5, P2::origin(), steps);
        let mut dp = GridDp::new(&inst, 17);
        for _round in 0..2 {
            for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
                let reused_full = dp.solve_with(&inst, order, TransitionKernel::AllPairs);
                let fresh_full = grid_optimum_unpruned(&inst, 17, order);
                assert_eq!(reused_full, fresh_full, "{order:?} all-pairs");
                let reused = dp.solve_with(&inst, order, TransitionKernel::Windowed);
                assert_eq!(reused, reused_full, "{order:?} windowed vs all-pairs");
                let reused_dt = dp.solve_with(&inst, order, TransitionKernel::DistanceTransform);
                let fresh_dt = grid_optimum(&inst, 17, order);
                assert_eq!(reused_dt, fresh_dt, "{order:?} distance transform");
            }
        }
    }

    #[test]
    fn kernels_agree_with_large_request_sets() {
        // More requests than the kernel block width: the shared SoA
        // service scan keeps every kernel on identical per-node service
        // values, so windowed/all-pairs equality is exact even past the
        // chunk boundary (and DT stays within tie-breaking).
        let mut steps = Vec::new();
        for t in 0..3 {
            let reqs: Vec<P2> = (0..11)
                .map(|i| {
                    let a = 0.45 * (t * 11 + i) as f64;
                    P2::xy(a.cos() * 1.1, (a * 1.7).sin())
                })
                .collect();
            steps.push(Step::new(reqs));
        }
        let inst = Instance::new(2.0, 0.6, P2::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let mut dp = GridDp::new(&inst, 19);
            let full = dp.solve_with(&inst, order, TransitionKernel::AllPairs);
            let pruned = dp.solve_with(&inst, order, TransitionKernel::Windowed);
            let dt = dp.solve_with(&inst, order, TransitionKernel::DistanceTransform);
            assert_eq!(pruned, full, "{order:?}");
            assert_dt_parity(dt, full, &format!("{order:?}"));
        }
    }

    #[test]
    fn window_never_excludes_reachable_cells_with_large_budget() {
        // Budget larger than the whole arena: the window clamps to the
        // full grid and every kernel must still agree with the all-pairs
        // scan.
        let steps = vec![
            Step::single(P2::xy(1.0, 1.0)),
            Step::single(P2::xy(-1.0, 0.5)),
        ];
        let inst = Instance::new(1.0, 50.0, P2::origin(), steps);
        let mut dp = GridDp::new(&inst, 13);
        let full = dp.solve_with(&inst, ServingOrder::MoveFirst, TransitionKernel::AllPairs);
        let pruned = dp.solve_with(&inst, ServingOrder::MoveFirst, TransitionKernel::Windowed);
        let dt = dp.solve_with(
            &inst,
            ServingOrder::MoveFirst,
            TransitionKernel::DistanceTransform,
        );
        assert_eq!(pruned, full);
        assert_dt_parity(dt, full, "large budget");
    }
}
