//! Brute-force offline optimum on a discretized arena.
//!
//! Exhaustive dynamic programming over a regular grid: the state is the
//! server's grid cell, the transition allows every cell within the
//! movement limit. Exponential in the dimension — usable only on modest
//! instances, which is exactly its job: an independent oracle that
//! certifies the PWL and convex solvers in tests.
//!
//! The grid restricts OPT's positions, so `grid_optimum ≥ OPT`; refining
//! the grid converges from above. Tests compare solvers at matching
//! tolerances.
//!
//! **Transitions are radius-pruned**: the per-step movement budget bounds
//! each axis offset by `⌈reach/h_i⌉` cells, so [`grid_optimum`] scans only
//! the neighbor window of each live cell — `O(cells · window · T)` —
//! instead of the all-pairs `O(cells² · T)` scan. The unpruned scan
//! survives as [`grid_optimum_unpruned`], kept as the parity oracle for
//! the pruned path and as the benchmark baseline; both compute the *same*
//! minima over the same transition sets, so their results agree exactly.
//!
//! **Scratch is hoisted.** [`GridDp`] owns the arena (node positions in
//! both array-of-structs and structure-of-arrays layout) and every DP
//! buffer (`cost`, `next`, per-node service costs), so repeated solves —
//! both serving orders, δ-sweeps against one instance — are
//! allocation-free after construction, like the median solver. The
//! per-step service costs are filled by one **SoA scan per request**
//! ([`msp_geometry::soa::SoaPoints::add_distances`], vectorized over the
//! node columns) shared by both DP variants, which accumulates in request
//! order — bit-identical per node to the scalar per-node loop it
//! replaced, so the pruned/unpruned exact-equality contract is preserved
//! for every request count.

use msp_core::cost::ServingOrder;
use msp_core::model::Instance;
use msp_geometry::{Aabb, Point, SoaPoints};

/// Grid geometry shared by the DP variants: node positions plus the
/// start-snap and movement slack described in [`grid_optimum`].
struct GridArena<const N: usize> {
    nodes: Vec<Point<N>>,
    /// The same nodes in structure-of-arrays layout, for the per-step
    /// service scan and the start-snap distance scan.
    nodes_soa: SoaPoints<N>,
    /// Per-axis node spacing.
    spacing: [f64; N],
    /// Movement tolerance: `max_move` plus half a grid diagonal.
    reach: f64,
    /// Start-snap radius (half a grid diagonal).
    slack: f64,
}

fn build_arena<const N: usize>(instance: &Instance<N>, cells_per_axis: usize) -> GridArena<N> {
    assert!(cells_per_axis >= 2, "need at least 2 cells per axis");
    let cells = cells_per_axis.pow(N as u32);
    assert!(
        cells <= 200_000,
        "grid too large ({cells} cells); shrink the instance"
    );

    // Arena: bounding box of the start and every request, padded slightly
    // so boundary optima are representable.
    let mut bbox = Aabb::<N>::from_points(&[instance.start]);
    for step in &instance.steps {
        for v in &step.requests {
            bbox.insert(v);
        }
    }
    let pad = 0.5 * instance.max_move.max(1e-6);
    bbox = Aabb::from_corners(bbox.min - Point::splat(pad), bbox.max + Point::splat(pad));

    // Enumerate grid nodes (axis 0 varies fastest).
    let mut nodes: Vec<Point<N>> = Vec::with_capacity(cells);
    let mut idx = [0usize; N];
    loop {
        let mut p = Point::<N>::origin();
        for i in 0..N {
            let frac = idx[i] as f64 / (cells_per_axis - 1) as f64;
            p[i] = bbox.min[i] + frac * (bbox.max[i] - bbox.min[i]);
        }
        nodes.push(p);
        // Odometer increment.
        let mut i = 0;
        loop {
            idx[i] += 1;
            if idx[i] < cells_per_axis {
                break;
            }
            idx[i] = 0;
            i += 1;
            if i == N {
                break;
            }
        }
        if i == N {
            break;
        }
    }

    // Movement tolerance: half a grid diagonal so the discretized path is
    // not starved by rounding.
    let mut spacing = [0.0f64; N];
    let mut diag2 = 0.0;
    for (i, s) in spacing.iter_mut().enumerate() {
        let h = (bbox.max[i] - bbox.min[i]) / (cells_per_axis - 1) as f64;
        *s = h;
        diag2 += h * h;
    }
    let slack = diag2.sqrt() * 0.51;
    let reach = instance.max_move + slack;

    let nodes_soa = SoaPoints::from_points(&nodes);
    GridArena {
        nodes,
        nodes_soa,
        spacing,
        reach,
        slack,
    }
}

/// A reusable grid-DP solver: arena geometry and every DP buffer are
/// built once, so repeated solves against the same instance (both serving
/// orders, pruned and unpruned variants, resolution studies over δ) are
/// allocation-free — the `MedianSolver` discipline applied to the offline
/// oracle.
pub struct GridDp<const N: usize> {
    arena: GridArena<N>,
    cells_per_axis: usize,
    /// Signature of the construction instance (start, `max_move`, `d`,
    /// horizon), used to catch mismatched solve calls in debug builds.
    built_for: (Point<N>, f64, f64, usize),
    /// DP cost of the current frontier, per node.
    cost: Vec<f64>,
    /// DP cost of the next frontier, per node.
    next: Vec<f64>,
    /// Per-node service cost of the current step.
    serve: Vec<f64>,
    /// Squared-distance scratch for the start snap.
    dist_sq: Vec<f64>,
}

impl<const N: usize> GridDp<N> {
    /// Builds the solver for `instance` on a `cells_per_axis`-per-axis
    /// grid. The solver is tied to this instance's arena — pass the same
    /// instance to [`GridDp::solve`].
    ///
    /// # Panics
    /// Panics when the grid would be degenerate (`cells_per_axis < 2`) or
    /// infeasibly large (> 200k cells) — this is a test oracle, not a
    /// solver.
    pub fn new(instance: &Instance<N>, cells_per_axis: usize) -> Self {
        let arena = build_arena(instance, cells_per_axis);
        let n = arena.nodes.len();
        GridDp {
            arena,
            cells_per_axis,
            built_for: (
                instance.start,
                instance.max_move,
                instance.d,
                instance.horizon(),
            ),
            cost: vec![0.0; n],
            next: vec![0.0; n],
            serve: vec![0.0; n],
            dist_sq: vec![0.0; n],
        }
    }

    /// Debug-build guard against solving a different instance than the
    /// one the arena was derived from (a silent wrong answer otherwise).
    fn check_instance(&self, instance: &Instance<N>) {
        debug_assert!(
            self.built_for.0 == instance.start
                && self.built_for.1 == instance.max_move
                && self.built_for.2 == instance.d
                && self.built_for.3 == instance.horizon(),
            "GridDp solved against a different instance than it was built for"
        );
    }

    /// Initial DP costs: the server must begin at `start`, which may be
    /// off-grid — allow a free snap of at most `slack`.
    fn reset_initial_costs(&mut self, start: &Point<N>) {
        self.arena
            .nodes_soa
            .distances_sq_into(start, &mut self.dist_sq);
        let mut any = false;
        for (c, &d2) in self.cost.iter_mut().zip(&self.dist_sq) {
            if d2.sqrt() <= self.arena.slack {
                *c = 0.0;
                any = true;
            } else {
                *c = f64::INFINITY;
            }
        }
        if !any {
            // Extremely coarse grid: snap to the nearest node
            // unconditionally.
            let (j, _) = self
                .dist_sq
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            self.cost[j] = 0.0;
        }
    }

    /// Per-node service cost of one step: one blocked SoA scan over the
    /// node columns, accumulating requests in order (bit-identical per
    /// node to the scalar `Σ_r d(node, v_r)` loop). Shared by both DP
    /// variants so their transition minima see the same values.
    fn fill_service_costs(&mut self, requests: &[Point<N>]) {
        self.arena
            .nodes_soa
            .service_costs_into(requests, &mut self.serve);
    }

    /// Radius-pruned neighbor-window DP over the instance's steps.
    ///
    /// `instance` must be the one the solver was built for: the arena
    /// (node grid, movement reach, start-snap slack) was derived from its
    /// bounding box and `max_move` at construction. Debug builds assert a
    /// signature match (start, `max_move`, `D`, horizon); release builds
    /// do not re-validate — a mismatched instance is priced on the wrong
    /// arena. The one-shot wrappers enforce the pairing.
    pub fn solve(&mut self, instance: &Instance<N>, order: ServingOrder) -> f64 {
        self.check_instance(instance);
        let inf = f64::INFINITY;
        self.reset_initial_costs(&instance.start);

        // Per-axis neighbor window: a move of length ≤ reach changes axis
        // `i` by at most ⌈reach/h_i⌉ cells. The window over-approximates
        // the Euclidean ball; the exact distance check inside the loop
        // keeps the transition set identical to the all-pairs scan.
        let cells_per_axis = self.cells_per_axis;
        let mut window = [0usize; N];
        for (w, &h) in window.iter_mut().zip(&self.arena.spacing) {
            *w = if h > 0.0 {
                ((self.arena.reach / h).ceil() as usize).min(cells_per_axis - 1)
            } else {
                cells_per_axis - 1
            };
        }
        let mut stride = [1usize; N];
        for i in 1..N {
            stride[i] = stride[i - 1] * cells_per_axis;
        }

        for step in &instance.steps {
            self.fill_service_costs(&step.requests);
            let (cost, next, serve) = (&mut self.cost, &mut self.next, &self.serve);
            let nodes = &self.arena.nodes;
            for c in next.iter_mut() {
                *c = inf;
            }
            for (j, pj) in nodes.iter().enumerate() {
                if cost[j].is_infinite() {
                    continue;
                }
                // Decode j's cell coordinates and clamp the window per
                // axis.
                let mut lo = [0usize; N];
                let mut hi = [0usize; N];
                let mut cur = [0usize; N];
                for i in 0..N {
                    let c = (j / stride[i]) % cells_per_axis;
                    lo[i] = c.saturating_sub(window[i]);
                    hi[i] = (c + window[i]).min(cells_per_axis - 1);
                    cur[i] = lo[i];
                }
                // Odometer over the neighbor box.
                loop {
                    let mut k = 0usize;
                    for i in 0..N {
                        k += cur[i] * stride[i];
                    }
                    let pk = &nodes[k];
                    let move_dist = pj.distance(pk);
                    if move_dist <= self.arena.reach {
                        let c = match order {
                            ServingOrder::MoveFirst => cost[j] + instance.d * move_dist + serve[k],
                            ServingOrder::AnswerFirst => {
                                cost[j] + serve[j] + instance.d * move_dist
                            }
                        };
                        if c < next[k] {
                            next[k] = c;
                        }
                    }
                    // Advance the odometer.
                    let mut i = 0;
                    loop {
                        cur[i] += 1;
                        if cur[i] <= hi[i] {
                            break;
                        }
                        cur[i] = lo[i];
                        i += 1;
                        if i == N {
                            break;
                        }
                    }
                    if i == N {
                        break;
                    }
                }
            }
            std::mem::swap(&mut self.cost, &mut self.next);
        }

        self.cost.iter().copied().fold(inf, f64::min)
    }

    /// The original all-pairs transition scan (`O(cells² · T)` once the
    /// shared service scan is hoisted), retained as the independent
    /// baseline the pruned [`GridDp::solve`] is certified against — and
    /// as the "before" side of the DP benchmarks.
    pub fn solve_unpruned(&mut self, instance: &Instance<N>, order: ServingOrder) -> f64 {
        self.check_instance(instance);
        let inf = f64::INFINITY;
        self.reset_initial_costs(&instance.start);

        for step in &instance.steps {
            self.fill_service_costs(&step.requests);
            let (cost, next, serve) = (&mut self.cost, &mut self.next, &self.serve);
            let nodes = &self.arena.nodes;
            for c in next.iter_mut() {
                *c = inf;
            }
            for (j, pj) in nodes.iter().enumerate() {
                if cost[j].is_infinite() {
                    continue;
                }
                for (k, pk) in nodes.iter().enumerate() {
                    let move_dist = pj.distance(pk);
                    if move_dist > self.arena.reach {
                        continue;
                    }
                    let c = match order {
                        ServingOrder::MoveFirst => cost[j] + instance.d * move_dist + serve[k],
                        ServingOrder::AnswerFirst => cost[j] + serve[j] + instance.d * move_dist,
                    };
                    if c < next[k] {
                        next[k] = c;
                    }
                }
            }
            std::mem::swap(&mut self.cost, &mut self.next);
        }

        self.cost.iter().copied().fold(inf, f64::min)
    }
}

/// Exhaustive DP optimum over a `cells_per_axis`-per-dimension grid
/// covering the instance's bounding box (start + all requests), using the
/// radius-pruned neighbor-window transition scan. One-shot wrapper over
/// [`GridDp`]; sweeps solving repeatedly should hold a `GridDp` and reuse
/// its buffers.
///
/// # Panics
/// Panics when the grid would be degenerate (`cells_per_axis < 2`) or
/// infeasibly large (> 200k cells) — this is a test oracle, not a solver.
pub fn grid_optimum<const N: usize>(
    instance: &Instance<N>,
    cells_per_axis: usize,
    order: ServingOrder,
) -> f64 {
    GridDp::new(instance, cells_per_axis).solve(instance, order)
}

/// One-shot wrapper over [`GridDp::solve_unpruned`], the all-pairs
/// parity oracle of [`grid_optimum`].
///
/// # Panics
/// Same contract as [`grid_optimum`].
pub fn grid_optimum_unpruned<const N: usize>(
    instance: &Instance<N>,
    cells_per_axis: usize,
    order: ServingOrder,
) -> f64 {
    GridDp::new(instance, cells_per_axis).solve_unpruned(instance, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::solve_line;
    use msp_core::model::Step;
    use msp_geometry::{P1, P2};

    #[test]
    fn matches_exact_line_solver_on_small_instance() {
        let steps = vec![
            Step::single(P1::new([2.0])),
            Step::single(P1::new([2.0])),
            Step::single(P1::new([-1.0])),
            Step::single(P1::new([0.5])),
        ];
        let inst = Instance::new(2.0, 1.0, P1::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let exact = solve_line(&inst, order).cost;
            let grid = grid_optimum(&inst, 241, order);
            assert!(
                (grid - exact).abs() < 0.12,
                "{order:?}: grid {grid} vs exact {exact}"
            );
            // The grid never undercuts the true optimum by more than the
            // start-snap slack.
            assert!(grid >= exact - 0.1);
        }
    }

    #[test]
    fn planar_triangle_instance_is_consistent_across_resolutions() {
        let steps = vec![
            Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
            Step::new(vec![P2::xy(1.0, 1.0)]),
        ];
        let inst = Instance::new(1.0, 0.7, P2::origin(), steps);
        let coarse = grid_optimum(&inst, 15, ServingOrder::MoveFirst);
        let fine = grid_optimum(&inst, 41, ServingOrder::MoveFirst);
        // Refinement should not increase the optimum by much (monotone up
        // to snap slack) and both must be finite.
        assert!(fine.is_finite() && coarse.is_finite());
        assert!(fine <= coarse + 0.2, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn zero_steps_cost_zero() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        assert_eq!(grid_optimum(&inst, 5, ServingOrder::MoveFirst), 0.0);
    }

    #[test]
    #[should_panic(expected = "grid too large")]
    fn oversize_grid_rejected() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        let _ = grid_optimum(&inst, 500, ServingOrder::MoveFirst);
    }

    #[test]
    fn pruned_equals_unpruned_on_the_line() {
        let steps = vec![
            Step::single(P1::new([2.0])),
            Step::new(vec![P1::new([-1.5]), P1::new([1.0])]),
            Step::new(vec![]),
            Step::single(P1::new([0.25])),
        ];
        let inst = Instance::new(1.5, 0.8, P1::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            for cells in [17, 65, 129] {
                let pruned = grid_optimum(&inst, cells, order);
                let full = grid_optimum_unpruned(&inst, cells, order);
                assert_eq!(
                    pruned, full,
                    "{order:?} cells={cells}: pruned {pruned} vs all-pairs {full}"
                );
            }
        }
    }

    #[test]
    fn pruned_equals_unpruned_on_the_plane() {
        let steps = vec![
            Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
            Step::new(vec![P2::xy(1.2, 1.1)]),
            Step::new(vec![P2::xy(-0.5, 0.6), P2::xy(0.9, -0.4)]),
        ];
        let inst = Instance::new(2.0, 0.6, P2::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            for cells in [9, 21, 33] {
                let pruned = grid_optimum(&inst, cells, order);
                let full = grid_optimum_unpruned(&inst, cells, order);
                assert_eq!(
                    pruned, full,
                    "{order:?} cells={cells}: pruned {pruned} vs all-pairs {full}"
                );
            }
        }
    }

    #[test]
    fn reused_solver_matches_one_shot_wrappers() {
        // One GridDp, solved repeatedly across both orders and both
        // variants: every reuse must reproduce the fresh-solver result
        // exactly (buffer hoisting is a pure allocation optimization).
        let steps = vec![
            Step::new(vec![P2::xy(0.8, 0.2), P2::xy(-0.3, 1.0)]),
            Step::new(vec![P2::xy(1.1, -0.6)]),
            Step::new(vec![]),
            Step::new(vec![P2::xy(0.1, 0.4), P2::xy(0.9, 0.9), P2::xy(-0.5, 0.0)]),
        ];
        let inst = Instance::new(1.5, 0.5, P2::origin(), steps);
        let mut dp = GridDp::new(&inst, 17);
        for _round in 0..2 {
            for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
                let reused = dp.solve(&inst, order);
                let fresh = grid_optimum(&inst, 17, order);
                assert_eq!(reused, fresh, "{order:?} pruned");
                let reused_full = dp.solve_unpruned(&inst, order);
                let fresh_full = grid_optimum_unpruned(&inst, 17, order);
                assert_eq!(reused_full, fresh_full, "{order:?} all-pairs");
                assert_eq!(reused, reused_full, "{order:?} pruned vs all-pairs");
            }
        }
    }

    #[test]
    fn pruned_equals_unpruned_with_large_request_sets() {
        // More requests than the kernel block width: the shared SoA
        // service scan keeps both variants on identical per-node service
        // values, so equality is exact even past the chunk boundary.
        let mut steps = Vec::new();
        for t in 0..3 {
            let reqs: Vec<P2> = (0..11)
                .map(|i| {
                    let a = 0.45 * (t * 11 + i) as f64;
                    P2::xy(a.cos() * 1.1, (a * 1.7).sin())
                })
                .collect();
            steps.push(Step::new(reqs));
        }
        let inst = Instance::new(2.0, 0.6, P2::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let pruned = grid_optimum(&inst, 19, order);
            let full = grid_optimum_unpruned(&inst, 19, order);
            assert_eq!(pruned, full, "{order:?}");
        }
    }

    #[test]
    fn window_never_excludes_reachable_cells_with_large_budget() {
        // Budget larger than the whole arena: the window clamps to the full
        // grid and the DP must still agree with the all-pairs scan.
        let steps = vec![
            Step::single(P2::xy(1.0, 1.0)),
            Step::single(P2::xy(-1.0, 0.5)),
        ];
        let inst = Instance::new(1.0, 50.0, P2::origin(), steps);
        let pruned = grid_optimum(&inst, 13, ServingOrder::MoveFirst);
        let full = grid_optimum_unpruned(&inst, 13, ServingOrder::MoveFirst);
        assert_eq!(pruned, full);
    }
}
