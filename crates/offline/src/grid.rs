//! Brute-force offline optimum on a discretized arena.
//!
//! Exhaustive dynamic programming over a regular grid: the state is the
//! server's grid cell, the transition allows every cell within the
//! movement limit. Exponential in the dimension and quadratic in the cell
//! count — usable only on tiny instances, which is exactly its job: an
//! independent oracle that certifies the PWL and convex solvers in tests.
//!
//! The grid restricts OPT's positions, so `grid_optimum ≥ OPT`; refining
//! the grid converges from above. Tests compare solvers at matching
//! tolerances.

use msp_core::cost::{service_cost, ServingOrder};
use msp_core::model::Instance;
use msp_geometry::{Aabb, Point};

/// Exhaustive DP optimum over a `cells_per_axis`-per-dimension grid
/// covering the instance's bounding box (start + all requests), padded by
/// the total reachable distance where useful.
///
/// # Panics
/// Panics when the grid would be degenerate (`cells_per_axis < 2`) or
/// infeasibly large (> 200k cells) — this is a test oracle, not a solver.
pub fn grid_optimum<const N: usize>(
    instance: &Instance<N>,
    cells_per_axis: usize,
    order: ServingOrder,
) -> f64 {
    assert!(cells_per_axis >= 2, "need at least 2 cells per axis");
    let cells = cells_per_axis.pow(N as u32);
    assert!(
        cells <= 200_000,
        "grid too large ({cells} cells); shrink the instance"
    );

    // Arena: bounding box of the start and every request, padded slightly
    // so boundary optima are representable.
    let mut bbox = Aabb::<N>::from_points(&[instance.start]);
    for step in &instance.steps {
        for v in &step.requests {
            bbox.insert(v);
        }
    }
    let pad = 0.5 * instance.max_move.max(1e-6);
    bbox = Aabb::from_corners(
        bbox.min - Point::splat(pad),
        bbox.max + Point::splat(pad),
    );

    // Enumerate grid nodes.
    let mut nodes: Vec<Point<N>> = Vec::with_capacity(cells);
    let mut idx = [0usize; N];
    loop {
        let mut p = Point::<N>::origin();
        for i in 0..N {
            let frac = idx[i] as f64 / (cells_per_axis - 1) as f64;
            p[i] = bbox.min[i] + frac * (bbox.max[i] - bbox.min[i]);
        }
        nodes.push(p);
        // Odometer increment.
        let mut i = 0;
        loop {
            idx[i] += 1;
            if idx[i] < cells_per_axis {
                break;
            }
            idx[i] = 0;
            i += 1;
            if i == N {
                break;
            }
        }
        if i == N {
            break;
        }
    }

    // Movement tolerance: half a grid diagonal so the discretized path is
    // not starved by rounding.
    let mut diag2 = 0.0;
    for i in 0..N {
        let h = (bbox.max[i] - bbox.min[i]) / (cells_per_axis - 1) as f64;
        diag2 += h * h;
    }
    let slack = diag2.sqrt() * 0.51;
    let reach = instance.max_move + slack;

    // DP: cost[j] = cheapest cost to have processed the prefix and be at
    // node j. Start: server must begin at `start`, which may be off-grid —
    // allow a free snap of at most `slack`.
    let inf = f64::INFINITY;
    let mut cost = vec![inf; nodes.len()];
    for (j, p) in nodes.iter().enumerate() {
        if p.distance(&instance.start) <= slack {
            cost[j] = 0.0;
        }
    }
    if cost.iter().all(|c| c.is_infinite()) {
        // Extremely coarse grid: snap to the nearest node unconditionally.
        let (j, _) = nodes
            .iter()
            .enumerate()
            .map(|(j, p)| (j, p.distance(&instance.start)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        cost[j] = 0.0;
    }

    let mut next = vec![inf; nodes.len()];
    for step in &instance.steps {
        for c in next.iter_mut() {
            *c = inf;
        }
        for (j, pj) in nodes.iter().enumerate() {
            if cost[j].is_infinite() {
                continue;
            }
            let serve_old = service_cost(pj, &step.requests);
            for (k, pk) in nodes.iter().enumerate() {
                let move_dist = pj.distance(pk);
                if move_dist > reach {
                    continue;
                }
                let c = match order {
                    ServingOrder::MoveFirst => {
                        cost[j] + instance.d * move_dist + service_cost(pk, &step.requests)
                    }
                    ServingOrder::AnswerFirst => cost[j] + serve_old + instance.d * move_dist,
                };
                if c < next[k] {
                    next[k] = c;
                }
            }
        }
        std::mem::swap(&mut cost, &mut next);
    }

    cost.into_iter().fold(inf, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::solve_line;
    use msp_core::model::Step;
    use msp_geometry::{P1, P2};

    #[test]
    fn matches_exact_line_solver_on_small_instance() {
        let steps = vec![
            Step::single(P1::new([2.0])),
            Step::single(P1::new([2.0])),
            Step::single(P1::new([-1.0])),
            Step::single(P1::new([0.5])),
        ];
        let inst = Instance::new(2.0, 1.0, P1::origin(), steps);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let exact = solve_line(&inst, order).cost;
            let grid = grid_optimum(&inst, 241, order);
            assert!(
                (grid - exact).abs() < 0.12,
                "{order:?}: grid {grid} vs exact {exact}"
            );
            // The grid never undercuts the true optimum by more than the
            // start-snap slack.
            assert!(grid >= exact - 0.1);
        }
    }

    #[test]
    fn planar_triangle_instance_is_consistent_across_resolutions() {
        let steps = vec![
            Step::new(vec![P2::xy(1.0, 0.0), P2::xy(0.0, 1.0)]),
            Step::new(vec![P2::xy(1.0, 1.0)]),
        ];
        let inst = Instance::new(1.0, 0.7, P2::origin(), steps);
        let coarse = grid_optimum(&inst, 15, ServingOrder::MoveFirst);
        let fine = grid_optimum(&inst, 41, ServingOrder::MoveFirst);
        // Refinement should not increase the optimum by much (monotone up
        // to snap slack) and both must be finite.
        assert!(fine.is_finite() && coarse.is_finite());
        assert!(fine <= coarse + 0.2, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn zero_steps_cost_zero() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        assert_eq!(grid_optimum(&inst, 5, ServingOrder::MoveFirst), 0.0);
    }

    #[test]
    #[should_panic(expected = "grid too large")]
    fn oversize_grid_rejected() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        let _ = grid_optimum(&inst, 500, ServingOrder::MoveFirst);
    }
}
