#![warn(missing_docs)]

//! Offline optimum solvers for the Mobile Server Problem.
//!
//! Competitive analysis compares an online algorithm against the optimal
//! *offline* solution, which sees the whole request sequence in advance.
//! The paper never needs to compute that optimum (its proofs construct
//! explicit adversary trajectories); an empirical reproduction does. The
//! offline problem is
//!
//! ```text
//! minimize   Σ_t ( D·‖P_t − P_{t−1}‖ + Σ_i ‖P_serve(t) − v_{t,i}‖ )
//! subject to ‖P_t − P_{t−1}‖ ≤ m,   P_0 given,
//! ```
//!
//! which is jointly **convex** in the trajectory `(P_1, …, P_T)` with
//! convex constraints. Three solvers, strongest first:
//!
//! * [`line`](mod@line) — **exact** solver for the 1-D case. The cost-to-go function
//!   is convex piecewise-linear; the per-step transform is a closed-form
//!   Lipschitz-clamp-and-widen (see [`pwl`]), so the DP is exact up to
//!   floating-point rounding.
//! * [`convex`] — projected subgradient descent with Dykstra projections
//!   for arbitrary dimension, polished by coordinate descent; converges to
//!   the global optimum of the convex program (tolerance reported).
//! * [`grid`] — brute-force dynamic program on a discretized arena with
//!   pluggable transition kernels ([`grid::TransitionKernel`]): the
//!   all-pairs `O(cells² · T)` oracle, the radius-pruned
//!   `O(cells · windowᴺ · T)` neighbor-window scan, and the
//!   lower-envelope distance transform (`O(cells · windowᴺ⁻¹ · T)`,
//!   `O(cells · T)` on the line) built on [`envelope`]. Only practical
//!   for modest instances; exists to cross-validate the other two
//!   solvers and to certify them in property tests.
//! * [`envelope`] — the 1-D lower-envelope-of-cones primitive
//!   (Felzenszwalb–Huttenlocher sweep adapted to the Euclidean metric)
//!   that powers the distance-transform kernel.
//! * [`probe`] — *online* certified **lower** bounds on the offline
//!   optimum ([`probe::RatioProbe`]): per-axis projection optima via
//!   [`IncrementalLineOpt`] plus windowed deflated grid DPs, so a live
//!   streaming session can report `alg_cost / OPT_lower_bound` without
//!   ever seeing the future.

pub mod convex;
pub mod envelope;
pub mod grid;
pub mod line;
pub mod probe;
pub mod pwl;

pub use convex::{ConvexSolver, ConvexSolverOptions};
pub use envelope::ConeEnvelope;
pub use grid::{grid_optimum, grid_optimum_unpruned, GridDp, TransitionKernel};
pub use line::{solve_line, solve_line_with_trajectory, IncrementalLineOpt, LineSolution};
pub use probe::{run_streaming_probed, ProbeOptions, RatioProbe, RatioSample};
pub use pwl::ConvexPwl;
