//! Convex piecewise-linear functions on a bounded interval.
//!
//! The exact 1-D offline solver represents its cost-to-go `f_t(p)` — "the
//! cheapest way to have processed steps `1..t` and be parked at `p`" — as a
//! convex piecewise-linear (PWL) function. Two operations drive the DP:
//!
//! 1. **Move transform** ([`ConvexPwl::move_transform`]):
//!    `h(p) = min_{|p−q| ≤ m} f(q) + D·|p−q|`. For convex `f` this has a
//!    closed form: let `a` be the leftmost point where the slope of `f`
//!    reaches `−D` and `b` the rightmost where it is still `≤ D`. Then `h`
//!    equals `f` on `[a, b]`, extends with slope `±D` for `m` on each side,
//!    and beyond that window equals `f` shifted outward by `m` and lifted
//!    by `D·m` (the server pays a full-budget move). The domain widens by
//!    `m` on both ends.
//! 2. **Service addition** ([`ConvexPwl::add_service`]): add
//!    `Σ_i |p − v_i|`, itself convex PWL.
//!
//! Both preserve convexity, so the invariant — secant slopes nondecreasing
//! — is checked in debug builds after every operation.
//!
//! Because the initial function is the indicator of the start position
//! (domain a single point) and every transform widens the domain by `m`,
//! all domains are finite intervals; the function is `+∞` outside.

/// A convex piecewise-linear function on the finite interval
/// `[xs[0], xs[last]]`, linearly interpolating the samples `(xs[i], ys[i])`
/// and `+∞` outside.
#[derive(Clone, Debug)]
pub struct ConvexPwl {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl ConvexPwl {
    /// The indicator of a single point: domain `{x0}`, value 0.
    pub fn point(x0: f64) -> Self {
        ConvexPwl {
            xs: vec![x0],
            ys: vec![0.0],
        }
    }

    /// Builds a function from breakpoint samples.
    ///
    /// # Panics
    /// Panics unless `xs` is strictly increasing, the lengths match, and
    /// the samples are convex (nondecreasing secant slopes, with a small
    /// tolerance).
    pub fn from_samples(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "need at least one sample");
        for w in xs.windows(2) {
            assert!(w[0] < w[1], "xs must be strictly increasing");
        }
        let f = ConvexPwl { xs, ys };
        f.check_convex(); // unconditional: this is a public constructor
        f
    }

    /// Domain `[lo, hi]` of finiteness.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().unwrap())
    }

    /// The breakpoint abscissas (sorted, strictly increasing). Exposed for
    /// the trajectory-recovery backward pass, which enumerates kink
    /// candidates.
    pub fn breakpoints(&self) -> &[f64] {
        &self.xs
    }

    /// Number of stored breakpoints.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// A PWL function always has at least one breakpoint.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the function; `+∞` outside the domain.
    pub fn eval(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if x < lo || x > hi {
            return f64::INFINITY;
        }
        match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => self.ys[i],
            Err(i) => {
                // lo < x < hi and x not a breakpoint → 1 ≤ i ≤ len-1.
                let (x0, x1) = (self.xs[i - 1], self.xs[i]);
                let (y0, y1) = (self.ys[i - 1], self.ys[i]);
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
        }
    }

    /// Minimum value and the interval of minimizers `[arg_lo, arg_hi]`.
    /// By convexity the minimum is attained on a (possibly degenerate)
    /// sub-interval whose endpoints are breakpoints.
    pub fn min(&self) -> (f64, f64, f64) {
        let mut best = f64::INFINITY;
        for &y in &self.ys {
            if y < best {
                best = y;
            }
        }
        // All breakpoints within tolerance of the minimum form the flat
        // bottom (convexity ⇒ they are contiguous).
        let tol = 1e-12 * (1.0 + best.abs());
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (x, y) in self.xs.iter().zip(&self.ys) {
            if *y <= best + tol {
                lo = lo.min(*x);
                hi = hi.max(*x);
            }
        }
        (best, lo, hi)
    }

    /// Minimizes the function over `[lo, hi] ∩ domain`.
    ///
    /// Returns `(value, argmin)`, with the argmin chosen closest to the
    /// unconstrained minimizer interval. Used by the trajectory recovery
    /// backward pass.
    ///
    /// # Panics
    /// Panics when the window misses the domain entirely.
    pub fn min_on(&self, lo: f64, hi: f64) -> (f64, f64) {
        let (dlo, dhi) = self.domain();
        let lo = lo.max(dlo);
        let hi = hi.min(dhi);
        assert!(
            lo <= hi + 1e-12,
            "window [{lo}, {hi}] misses the domain [{dlo}, {dhi}]"
        );
        let hi = hi.max(lo);
        let (_, mlo, mhi) = self.min();
        // Convexity: restrict the minimizer interval to the window by
        // clamping; if disjoint, the best point is the window end nearest
        // the minimizer.
        let x = if mhi < lo {
            lo
        } else if mlo > hi {
            hi
        } else {
            // Overlap: any common point is optimal; pick the clamped center
            // of the overlap for stability.
            (mlo.max(lo) + mhi.min(hi)) / 2.0
        };
        (self.eval(x), x)
    }

    /// The move transform `h(p) = min_{|p−q| ≤ m} f(q) + D·|p−q|` described
    /// in the module docs. `m > 0`, `d ≥ 0`.
    pub fn move_transform(&self, d: f64, m: f64) -> ConvexPwl {
        assert!(m > 0.0, "movement limit must be positive");
        assert!(d >= 0.0, "movement weight must be non-negative");
        let n = self.xs.len();
        let (dlo, dhi) = self.domain();

        // Locate a: the leftmost point where the right-slope is ≥ −D, and
        // b: the rightmost point where the left-slope is ≤ D. Slopes of
        // segment i (between breakpoints i and i+1).
        let slope = |i: usize| (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i]);
        // index of first breakpoint from which slopes are ≥ −D
        let mut ia = 0;
        while ia + 1 < n && slope(ia) < -d {
            ia += 1;
        }
        // index of last breakpoint up to which slopes are ≤ D
        let mut ib = n - 1;
        while ib > 0 && slope(ib - 1) > d {
            ib -= 1;
        }
        // Convexity guarantees ia ≤ ib.
        debug_assert!(ia <= ib);
        let a = self.xs[ia];
        let b = self.xs[ib];
        let fa = self.ys[ia];
        let fb = self.ys[ib];

        let mut xs = Vec::with_capacity(n + 4);
        let mut ys = Vec::with_capacity(n + 4);

        // Steep left tail (slopes < −D): original breakpoints shifted left
        // by m, lifted by D·m — for p < a − m the constrained optimum is a
        // full-budget move to q = p + m.
        for i in 0..ia {
            xs.push(self.xs[i] - m);
            ys.push(self.ys[i] + d * m);
        }
        // Slope −D connector on [a − m, a].
        xs.push(a - m);
        ys.push(fa + d * m);
        // The untouched middle [a, b] (slopes within [−D, D]): stay put.
        for i in ia..=ib {
            // Avoid duplicating `a` when it already equals the connector
            // endpoint — cannot happen since m > 0, so a − m < a strictly.
            xs.push(self.xs[i]);
            ys.push(self.ys[i]);
        }
        // Slope +D connector on [b, b + m].
        xs.push(b + m);
        ys.push(fb + d * m);
        // Steep right tail shifted right by m.
        for i in ib + 1..n {
            xs.push(self.xs[i] + m);
            ys.push(self.ys[i] + d * m);
        }

        debug_assert!(xs[0] <= dlo - m + 1e-9 && *xs.last().unwrap() >= dhi + m - 1e-9);
        let mut out = ConvexPwl { xs, ys };
        out.dedupe();
        out.assert_convex();
        out
    }

    /// Adds the service cost `p ↦ Σ_i |p − v_i|` of a request batch.
    ///
    /// The result's breakpoints are the union of the current breakpoints
    /// and the requests that fall inside the domain (requests outside add
    /// a linear — not kinked — contribution there).
    pub fn add_service(&self, requests: &[f64]) -> ConvexPwl {
        if requests.is_empty() {
            return self.clone();
        }
        let mut vs: Vec<f64> = requests.to_vec();
        vs.sort_by(f64::total_cmp);
        // Prefix sums for O(log r) service evaluation.
        let mut prefix = Vec::with_capacity(vs.len() + 1);
        prefix.push(0.0);
        for v in &vs {
            prefix.push(prefix.last().unwrap() + v);
        }
        let total: f64 = *prefix.last().unwrap();
        let service = |p: f64| -> f64 {
            // #requests ≤ p
            let k = vs.partition_point(|v| *v <= p);
            let below = prefix[k];
            let above = total - below;
            p * k as f64 - below + (above - p * (vs.len() - k) as f64)
        };

        let (dlo, dhi) = self.domain();
        // Merged breakpoint set: existing xs plus in-domain requests.
        let mut merged: Vec<f64> = self.xs.clone();
        merged.extend(vs.iter().copied().filter(|v| *v > dlo && *v < dhi));
        merged.sort_by(f64::total_cmp);
        merged.dedup_by(|a, b| *a == *b);

        let ys = merged.iter().map(|&x| self.eval(x) + service(x)).collect();
        let mut out = ConvexPwl { xs: merged, ys };
        out.dedupe();
        out.assert_convex();
        out
    }

    /// Canonicalizes the representation: merges breakpoints with nearly
    /// identical abscissas (whose secant slopes would be numerical
    /// garbage), then removes interior breakpoints collinear with their
    /// neighbours. Keeps the representation small and well-conditioned
    /// across thousands of DP steps.
    fn dedupe(&mut self) {
        // Pass 1: merge near-duplicate abscissas. Such pairs arise when a
        // request lands within float-epsilon of an existing breakpoint or
        // when transform connectors collide with shifted tail points; the
        // merged point takes the smaller value (the functions are pointwise
        // minima, so this errs by at most slope·1e-9 downward).
        if self.xs.len() >= 2 {
            let mut xs = Vec::with_capacity(self.xs.len());
            let mut ys = Vec::with_capacity(self.ys.len());
            xs.push(self.xs[0]);
            ys.push(self.ys[0]);
            for i in 1..self.xs.len() {
                let last = *xs.last().unwrap();
                let x = self.xs[i];
                let y = self.ys[i];
                if x - last <= 1e-9 * (1.0 + x.abs().max(last.abs())) {
                    // Keep the right abscissa when merging the final point
                    // so the domain's upper end is preserved.
                    if i == self.xs.len() - 1 {
                        *xs.last_mut().unwrap() = x;
                    }
                    let ly = ys.last_mut().unwrap();
                    if y < *ly {
                        *ly = y;
                    }
                } else {
                    xs.push(x);
                    ys.push(y);
                }
            }
            self.xs = xs;
            self.ys = ys;
        }
        if self.xs.len() <= 2 {
            return;
        }
        let mut keep_xs = Vec::with_capacity(self.xs.len());
        let mut keep_ys = Vec::with_capacity(self.ys.len());
        keep_xs.push(self.xs[0]);
        keep_ys.push(self.ys[0]);
        for i in 1..self.xs.len() - 1 {
            let (x0, y0) = (*keep_xs.last().unwrap(), *keep_ys.last().unwrap());
            let (x1, y1) = (self.xs[i], self.ys[i]);
            let (x2, y2) = (self.xs[i + 1], self.ys[i + 1]);
            let s01 = (y1 - y0) / (x1 - x0);
            let s12 = (y2 - y1) / (x2 - x1);
            let scale = 1.0 + s01.abs().max(s12.abs());
            if (s12 - s01).abs() > 1e-12 * scale {
                keep_xs.push(x1);
                keep_ys.push(y1);
            }
        }
        keep_xs.push(*self.xs.last().unwrap());
        keep_ys.push(*self.ys.last().unwrap());
        self.xs = keep_xs;
        self.ys = keep_ys;
    }

    /// Debug-build convexity audit on the hot DP path.
    fn assert_convex(&self) {
        #[cfg(debug_assertions)]
        self.check_convex();
    }

    /// Convexity check: secant slopes must be nondecreasing (with a small
    /// relative tolerance for float drift).
    fn check_convex(&self) {
        let mut prev = f64::NEG_INFINITY;
        for w in self.xs.windows(2).zip(self.ys.windows(2)) {
            let s = (w.1[1] - w.1[0]) / (w.0[1] - w.0[0]);
            let scale = 1.0 + s.abs().max(prev.abs());
            assert!(
                s >= prev - 1e-7 * scale,
                "convexity violated: slope {s} after {prev}"
            );
            prev = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference for the move transform.
    fn brute_move(f: &ConvexPwl, d: f64, m: f64, p: f64, grid: usize) -> f64 {
        let (lo, hi) = f.domain();
        let qlo = (p - m).max(lo);
        let qhi = (p + m).min(hi);
        if qlo > qhi {
            return f64::INFINITY;
        }
        let mut best = f64::INFINITY;
        for k in 0..=grid {
            let q = qlo + (qhi - qlo) * k as f64 / grid as f64;
            best = best.min(f.eval(q) + d * (p - q).abs());
        }
        // Also test breakpoints inside the window and q = p (kink of the
        // move term) — together with the window ends these are the exact
        // candidates, so the reference is exact despite the coarse grid.
        for (x, y) in f.xs.iter().zip(&f.ys) {
            if *x >= qlo && *x <= qhi {
                best = best.min(y + d * (p - x).abs());
            }
        }
        if p >= qlo && p <= qhi {
            best = best.min(f.eval(p));
        }
        best
    }

    #[test]
    fn point_indicator_evaluates() {
        let f = ConvexPwl::point(2.0);
        assert_eq!(f.eval(2.0), 0.0);
        assert!(f.eval(2.1).is_infinite());
        assert_eq!(f.min(), (0.0, 2.0, 2.0));
    }

    #[test]
    fn eval_interpolates_linearly() {
        let f = ConvexPwl::from_samples(vec![0.0, 1.0, 2.0], vec![1.0, 0.0, 3.0]);
        assert_eq!(f.eval(0.5), 0.5);
        assert_eq!(f.eval(1.5), 1.5);
        assert!(f.eval(-0.1).is_infinite());
    }

    #[test]
    fn move_transform_of_point_is_vee() {
        // From the indicator of 0: h(p) = D|p| on [−m, m].
        let f = ConvexPwl::point(0.0);
        let h = f.move_transform(3.0, 2.0);
        assert_eq!(h.domain(), (-2.0, 2.0));
        assert!((h.eval(0.0) - 0.0).abs() < 1e-12);
        assert!((h.eval(1.0) - 3.0).abs() < 1e-12);
        assert!((h.eval(-2.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn move_transform_keeps_shallow_middle() {
        // f with slopes ±1, D = 5 ⇒ nothing is steeper than D: h = f
        // extended by slope ±D connectors… wait, slopes within [−D, D]
        // means a = dom_lo, b = dom_hi: connectors extend from the ends.
        let f = ConvexPwl::from_samples(vec![-1.0, 0.0, 1.0], vec![1.0, 0.0, 1.0]);
        let h = f.move_transform(5.0, 1.0);
        assert_eq!(h.domain(), (-2.0, 2.0));
        assert!((h.eval(0.5) - 0.5).abs() < 1e-12); // middle untouched
        assert!((h.eval(2.0) - (1.0 + 5.0)).abs() < 1e-12); // full-budget move
    }

    #[test]
    fn move_transform_clamps_steep_tails() {
        // f = 10·|p| (slopes ∓10), D = 2, m = 1. For p ∈ [0, 1]:
        // h(p) = min_q 10|q| + 2|p−q| = 2p (go to 0 — reachable). For p > 1:
        // q = p − 1: h(p) = 10(p−1) + 2.
        let f = ConvexPwl::from_samples(vec![-3.0, 0.0, 3.0], vec![30.0, 0.0, 30.0]);
        let h = f.move_transform(2.0, 1.0);
        assert!((h.eval(0.5) - 1.0).abs() < 1e-12);
        assert!((h.eval(1.0) - 2.0).abs() < 1e-12);
        assert!((h.eval(2.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn move_transform_matches_brute_force() {
        let f = ConvexPwl::from_samples(
            vec![-2.0, -1.0, 0.5, 1.0, 3.0],
            vec![8.0, 2.0, 0.5, 1.0, 9.0],
        );
        for (d, m) in [(1.0, 0.5), (3.0, 1.0), (0.5, 2.0), (10.0, 0.3)] {
            let h = f.move_transform(d, m);
            let (lo, hi) = h.domain();
            for k in 0..=60 {
                let p = lo + (hi - lo) * k as f64 / 60.0;
                let want = brute_move(&f, d, m, p, 2000);
                let got = h.eval(p);
                assert!(
                    (got - want).abs() < 1e-6 * (1.0 + want.abs()),
                    "D={d} m={m} p={p}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn add_service_single_request() {
        let f = ConvexPwl::from_samples(vec![-1.0, 1.0], vec![0.0, 0.0]);
        let g = f.add_service(&[0.0]);
        assert!((g.eval(0.0) - 0.0).abs() < 1e-12);
        assert!((g.eval(1.0) - 1.0).abs() < 1e-12);
        assert!((g.eval(-0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_service_outside_domain_adds_linear_part() {
        let f = ConvexPwl::from_samples(vec![0.0, 1.0], vec![0.0, 0.0]);
        // Request at 5: inside the domain the service is 5 − p (linear).
        let g = f.add_service(&[5.0]);
        assert!((g.eval(0.0) - 5.0).abs() < 1e-12);
        assert!((g.eval(1.0) - 4.0).abs() < 1e-12);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn add_service_batch() {
        let f = ConvexPwl::from_samples(vec![-2.0, 2.0], vec![0.0, 0.0]);
        let g = f.add_service(&[-1.0, 0.0, 1.0]);
        // At 0: |−1| + 0 + |1| = 2; at 2: 3 + 2 + 1 = 6.
        assert!((g.eval(0.0) - 2.0).abs() < 1e-12);
        assert!((g.eval(2.0) - 6.0).abs() < 1e-12);
        let (min, lo, hi) = g.min();
        assert!((min - 2.0).abs() < 1e-12);
        assert_eq!((lo, hi), (0.0, 0.0));
    }

    #[test]
    fn add_empty_service_is_identity() {
        let f = ConvexPwl::from_samples(vec![0.0, 1.0], vec![1.0, 2.0]);
        let g = f.add_service(&[]);
        assert_eq!(g.eval(0.5), f.eval(0.5));
    }

    #[test]
    fn min_on_window_clamps_to_minimizer() {
        let f = ConvexPwl::from_samples(vec![-1.0, 0.0, 1.0], vec![1.0, 0.0, 1.0]);
        let (v, x) = f.min_on(-2.0, 2.0);
        assert_eq!((v, x), (0.0, 0.0));
        let (v, x) = f.min_on(0.5, 2.0);
        assert!((v - 0.5).abs() < 1e-12);
        assert!((x - 0.5).abs() < 1e-12);
        let (v, x) = f.min_on(-2.0, -0.75);
        assert!((v - 0.75).abs() < 1e-12);
        assert!((x + 0.75).abs() < 1e-12);
    }

    #[test]
    fn dedupe_removes_collinear_points() {
        // Build with a redundant midpoint via service addition of nothing…
        // construct directly: three collinear samples should collapse when
        // run through an operation.
        let f = ConvexPwl::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]);
        let h = f.move_transform(10.0, 1.0);
        // Slope-1 stretch survives as a single segment: endpoints plus the
        // two connectors only.
        assert!(h.len() <= 4, "got {} breakpoints", h.len());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_samples_rejects_unsorted() {
        let _ = ConvexPwl::from_samples(vec![1.0, 0.0], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "convexity")]
    fn from_samples_rejects_concave() {
        let _ = ConvexPwl::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn repeated_transforms_keep_convexity_and_grow_domain() {
        let mut f = ConvexPwl::point(0.0);
        for t in 0..50 {
            f = f.move_transform(2.0, 1.0);
            f = f.add_service(&[(t as f64 * 0.37).sin() * 5.0]);
        }
        let (lo, hi) = f.domain();
        assert!((lo + 50.0).abs() < 1e-9);
        assert!((hi - 50.0).abs() < 1e-9);
        // Convexity asserted internally; evaluate a few points for sanity.
        assert!(f.eval(0.0).is_finite());
    }
}
