//! The discrete-time simulator: runs an online algorithm over an instance
//! under a serving order and a resource-augmentation factor, with strict
//! enforcement of the movement budget.
//!
//! Entry points:
//!
//! * [`run`] — one `(algorithm, δ, order)` combination, the classic path.
//! * [`run_batch`] — the multi-configuration fast path: one pass over the
//!   steps prices every requested δ under every requested serving order.
//!   The decision trajectory depends only on δ (the model reveals the
//!   requests before the move in *both* orders, so the serving order is a
//!   pure pricing choice), which lets a single decision sequence per δ be
//!   priced under all orders simultaneously — halving the number of
//!   expensive median solves for the common both-orders sweep.
//! * [`run_streaming`] / [`run_streaming_batch`] — the open-ended paths:
//!   steps arrive from any iterator (a workload generator, a trace file, a
//!   network feed) and only running totals are kept, so memory is O(1) in
//!   the horizon. [`StreamingSim`] is the underlying push-style engine
//!   with checkpoint/resume support for multi-million-step runs.

use crate::algorithm::{AlgContext, OnlineAlgorithm, WarmStateCodec, WarmStateError};
use crate::cost::{service_cost, CostBreakdown, ServingOrder, StepCost};
use crate::model::{Instance, Step, StreamParams};
use msp_analysis::obs;
use msp_geometry::{step_towards, Point};

/// Granularity at which [`StreamingSim::feed`] flushes its local step
/// count into the observability registry: one shared-counter add per 64
/// steps keeps the enabled-metrics hot path well under the 1% overhead
/// budget even for trivial algorithms, at the cost of the live
/// `stream.steps` counter trailing reality by at most 63 steps (the
/// remainder is flushed by [`StreamingSim::finish`] /
/// [`StreamingSim::into_parts`]).
const OBS_STEP_FLUSH: u32 = 64;

/// Outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult<const N: usize> {
    /// Algorithm name, for tables.
    pub algorithm: String,
    /// Serving order the run was priced under.
    pub order: ServingOrder,
    /// Augmentation factor δ granted to the algorithm.
    pub delta: f64,
    /// Visited positions `P_0 … P_T` (length `T + 1`).
    pub positions: Vec<Point<N>>,
    /// Cost trace.
    pub cost: CostBreakdown,
}

impl<const N: usize> RunResult<N> {
    /// Total cost `C_Alg`.
    pub fn total_cost(&self) -> f64 {
        self.cost.total()
    }

    /// Largest single-step displacement actually used — always within the
    /// augmented budget by construction; exposed for diagnostics.
    pub fn max_step_used(&self) -> f64 {
        self.positions
            .windows(2)
            .map(|w| w[0].distance(&w[1]))
            .fold(0.0, f64::max)
    }
}

/// Runs `algorithm` on `instance` with augmentation `delta` under `order`.
///
/// The algorithm sees the requests before moving in both orders (that is
/// the model's information regime); `order` only decides whether service
/// is priced from the old or the new position. Proposals beyond the budget
/// `(1+δ)m` are clamped onto the segment towards the proposal, so the
/// returned trajectory is always feasible for the *online* budget.
///
/// ```
/// use msp_core::cost::ServingOrder;
/// use msp_core::model::{Instance, Step};
/// use msp_core::mtc::MoveToCenter;
/// use msp_core::simulator::run;
/// use msp_geometry::P2;
///
/// // Three rounds of requests pulling the server to the right.
/// let steps = (1..=3)
///     .map(|t| Step::single(P2::xy(t as f64, 0.0)))
///     .collect();
/// let inst = Instance::new(2.0, 0.5, P2::origin(), steps);
///
/// let mut alg = MoveToCenter::new();
/// let result = run(&inst, &mut alg, 0.1, ServingOrder::MoveFirst);
///
/// assert_eq!(result.positions.len(), inst.horizon() + 1);
/// // The budget (1+δ)m is strictly enforced on every step.
/// assert!(result.max_step_used() <= 0.55 + 1e-12);
/// assert!(result.total_cost() > 0.0);
/// ```
pub fn run<const N: usize, A: OnlineAlgorithm<N>>(
    instance: &Instance<N>,
    algorithm: &mut A,
    delta: f64,
    order: ServingOrder,
) -> RunResult<N> {
    run_with_warm_hint(instance, algorithm, None, delta, order)
}

/// [`run`] with an optional **cross-instance warm hint**: after the reset
/// (which clears the algorithm's numerical warm state so reruns stay
/// bit-identical), `warm` — typically the final state of the same
/// algorithm on a *seed-adjacent* instance of a fan — is offered once via
/// [`OnlineAlgorithm::warm_hint`] before the first decision. Exactly the
/// cross-lane δ-seeding discipline of [`run_batch`], applied across the
/// instance boundary instead of across lanes: the hint is a starting
/// iterate, never policy, so results agree with the unhinted [`run`] to
/// well within solver tolerance (pinned by tests). `None` is bit-equal to
/// [`run`]. Seed fans chain this through
/// `msp_bench::runner::warm_seed_fan`.
pub fn run_with_warm_hint<const N: usize, A: OnlineAlgorithm<N>>(
    instance: &Instance<N>,
    algorithm: &mut A,
    warm: Option<&A>,
    delta: f64,
    order: ServingOrder,
) -> RunResult<N> {
    let ctx = AlgContext::new(instance, delta);
    algorithm.reset(&ctx);
    if let Some(neighbor) = warm {
        algorithm.warm_hint(neighbor);
    }
    let budget = ctx.online_budget();

    let mut positions = Vec::with_capacity(instance.horizon() + 1);
    positions.push(instance.start);
    let mut cost = CostBreakdown {
        per_step: Vec::with_capacity(instance.horizon()),
        ..Default::default()
    };

    let mut current = instance.start;
    for step in &instance.steps {
        let proposal = algorithm.decide(&current, &step.requests, &ctx);
        debug_assert!(
            proposal.is_finite(),
            "{} proposed a non-finite position",
            algorithm.name()
        );
        let next = step_towards(&current, &proposal, budget);
        let movement = instance.d * current.distance(&next);
        let serve_from = match order {
            ServingOrder::MoveFirst => &next,
            ServingOrder::AnswerFirst => &current,
        };
        let service = service_cost(serve_from, &step.requests);
        cost.movement += movement;
        cost.service += service;
        cost.per_step.push(StepCost { movement, service });
        current = next;
        positions.push(current);
    }

    RunResult {
        algorithm: algorithm.name(),
        order,
        delta,
        positions,
        cost,
    }
}

/// Convenience: runs under the paper's default Move-First order.
pub fn run_move_first<const N: usize, A: OnlineAlgorithm<N>>(
    instance: &Instance<N>,
    algorithm: &mut A,
    delta: f64,
) -> RunResult<N> {
    run(instance, algorithm, delta, ServingOrder::MoveFirst)
}

/// Execution knobs of the batched engines ([`run_batch_with`],
/// [`run_streaming_batch_with`]).
///
/// δ-lanes are partitioned into **groups**; groups execute concurrently
/// over [`msp_analysis::sweep::parallel_for_each_mut`] workers — the
/// persistent work-stealing pool, so engines that fan out repeatedly
/// (the streaming batch engine dispatches once per 256-step block) reuse
/// the same workers instead of paying a spawn/join barrier per dispatch —
/// while the lanes *inside* a group are stepped together, which enables cross-lane
/// warm seeding: before lane `i` of a group decides on a step, it receives
/// an [`OnlineAlgorithm::warm_hint`] from lane `i − 1`, which just solved
/// the **same step** — for Move-to-Center that hands over an essentially
/// converged median iterate, collapsing the solve to a verification pass.
///
/// Hints are numerics, not policy: every lane's trajectory agrees with its
/// sequential [`run`] to well within solver tolerance (pinned by tests),
/// but bit-exact reproducibility across machines additionally requires a
/// fixed group shape — that is what [`BatchOptions::strict`] provides.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads for lane groups (0 = all available CPUs; nested
    /// inside another sweep everything runs on the current worker).
    pub threads: usize,
    /// Lanes per group (0 = auto: `⌈lanes / threads⌉`, so one group per
    /// worker — maximal seeding without idle cores).
    pub lane_chunk: usize,
    /// Whether neighboring lanes of a group exchange warm hints.
    pub cross_lane_seed: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            lane_chunk: 0,
            cross_lane_seed: true,
        }
    }
}

impl BatchOptions {
    /// Bit-stable configuration: one lane per group, no cross-lane
    /// seeding. Every lane performs exactly the arithmetic of its
    /// sequential [`run`] (bit-equal output, pinned by tests), and the
    /// result is independent of the machine's core count.
    pub fn strict() -> Self {
        BatchOptions {
            threads: 0,
            lane_chunk: 1,
            cross_lane_seed: false,
        }
    }

    /// Fully sequential strict configuration — the reference the parallel
    /// paths are pinned against.
    pub fn sequential() -> Self {
        BatchOptions {
            threads: 1,
            lane_chunk: 1,
            cross_lane_seed: false,
        }
    }

    /// Resolved lanes-per-group for `n` lanes.
    fn group_size(&self, n: usize) -> usize {
        if self.lane_chunk > 0 {
            self.lane_chunk
        } else {
            n.div_ceil(msp_analysis::sweep::effective_threads(self.threads).max(1))
        }
        .max(1)
    }
}

/// One δ-lane of a batched run: its own algorithm clone (decisions depend
/// on the augmented budget) pricing the shared trajectory under every
/// requested order.
struct BatchLane<const N: usize, A> {
    ctx: AlgContext<N>,
    budget: f64,
    algorithm: A,
    current: Point<N>,
    positions: Vec<Point<N>>,
    costs: Vec<CostBreakdown>, // one per serving order
}

/// Common surface of a batched δ-lane. Both engines — in-memory
/// [`run_batch_with`] and streaming [`run_streaming_batch_with`] — drive
/// their lanes exclusively through [`advance_lane_group`], so the
/// step-major/lane-minor ordering and the cross-lane hint pattern (the
/// bit-equality contract between the two engines) live in exactly one
/// place.
trait SeedableLane<const N: usize> {
    /// The algorithm driving this lane.
    type Alg: OnlineAlgorithm<N>;
    fn algorithm(&self) -> &Self::Alg;
    fn algorithm_mut(&mut self) -> &mut Self::Alg;
    /// Advances the lane by one step, pricing the shared move under every
    /// requested order (the orders differ only in the serving endpoint,
    /// so the service sums are the only per-order work).
    fn feed(&mut self, step: &Step<N>, orders: &[ServingOrder]);
}

/// The decide/clamp/price core shared by every batched lane: proposes,
/// clamps to the budget, and invokes `price(order_index, movement,
/// service)` once per requested order. Both lane kinds (in-memory and
/// streaming) route through this single copy, so the pricing arithmetic —
/// part of the engines' bit-equality contract — cannot diverge. Returns
/// the clamped next position and the step length actually moved; the
/// caller updates its own record.
fn price_lane_step<const N: usize, A: OnlineAlgorithm<N>>(
    algorithm: &mut A,
    ctx: &AlgContext<N>,
    budget: f64,
    current: &Point<N>,
    step: &Step<N>,
    orders: &[ServingOrder],
    mut price: impl FnMut(usize, f64, f64),
) -> (Point<N>, f64) {
    let proposal = algorithm.decide(current, &step.requests, ctx);
    debug_assert!(
        proposal.is_finite(),
        "{} proposed a non-finite position",
        algorithm.name()
    );
    let next = step_towards(current, &proposal, budget);
    let step_len = current.distance(&next);
    let movement = ctx.d * step_len;
    for (oi, order) in orders.iter().enumerate() {
        let serve_from = match order {
            ServingOrder::MoveFirst => &next,
            ServingOrder::AnswerFirst => current,
        };
        price(oi, movement, service_cost(serve_from, &step.requests));
    }
    (next, step_len)
}

impl<const N: usize, A: OnlineAlgorithm<N>> SeedableLane<N> for BatchLane<N, A> {
    type Alg = A;

    fn algorithm(&self) -> &A {
        &self.algorithm
    }

    fn algorithm_mut(&mut self) -> &mut A {
        &mut self.algorithm
    }

    fn feed(&mut self, step: &Step<N>, orders: &[ServingOrder]) {
        let costs = &mut self.costs;
        let (next, _) = price_lane_step(
            &mut self.algorithm,
            &self.ctx,
            self.budget,
            &self.current,
            step,
            orders,
            |oi, movement, service| {
                let cost = &mut costs[oi];
                cost.movement += movement;
                cost.service += service;
                cost.per_step.push(StepCost { movement, service });
            },
        );
        self.current = next;
        self.positions.push(next);
    }
}

/// Steps every lane of one group through `steps`, exchanging warm hints
/// between neighboring lanes when enabled: before lane `i` decides on a
/// step, it is hinted from lane `i − 1`, which just solved the same step.
fn advance_lane_group<const N: usize, L: SeedableLane<N>>(
    lanes: &mut [L],
    steps: &[Step<N>],
    orders: &[ServingOrder],
    cross_lane_seed: bool,
) {
    for step in steps {
        for i in 0..lanes.len() {
            let (done, rest) = lanes.split_at_mut(i);
            let lane = &mut rest[0];
            if cross_lane_seed {
                if let Some(prev) = done.last() {
                    lane.algorithm_mut().warm_hint(prev.algorithm());
                }
            }
            lane.feed(step, orders);
        }
    }
}

/// Splits lanes into contiguous seeding groups of `group_size` (the last
/// group may be short), preserving δ order.
fn partition_groups<T>(lanes: Vec<T>, group_size: usize) -> Vec<Vec<T>> {
    let mut groups = Vec::with_capacity(lanes.len().div_ceil(group_size.max(1)));
    let mut lanes = lanes.into_iter();
    loop {
        let group: Vec<T> = lanes.by_ref().take(group_size).collect();
        if group.is_empty() {
            break;
        }
        groups.push(group);
    }
    groups
}

/// Runs `algorithm` over `instance` for every `(δ, order)` combination in
/// a single pass over the steps, returning results in δ-major, order-minor
/// sequence (`deltas.len() · orders.len()` entries).
///
/// This is [`run_batch_with`] under [`BatchOptions::default`]: δ-lane
/// groups fan out over all cores and neighboring lanes exchange warm
/// hints. Per δ the decision sequence is computed **once** and priced
/// under every serving order; results agree with [`run`] for the matching
/// `(δ, order)` to well within solver tolerance (bit-equal under
/// [`BatchOptions::strict`]) — pinned by tests. For warm-started
/// algorithms such as [`crate::mtc::MoveToCenter`], batching additionally
/// keeps each δ-lane's solver warm across the whole pass, exactly as the
/// sequential path would.
///
/// ```
/// use msp_core::cost::ServingOrder;
/// use msp_core::model::{Instance, Step};
/// use msp_core::mtc::MoveToCenter;
/// use msp_core::simulator::run_batch;
/// use msp_geometry::P2;
///
/// let steps = (0..20)
///     .map(|t| Step::single(P2::xy((t as f64 * 0.4).sin(), 0.1 * t as f64)))
///     .collect();
/// let inst = Instance::new(2.0, 0.5, P2::origin(), steps);
///
/// // One pass prices a whole δ-grid under both serving orders.
/// let deltas = [0.0, 0.2, 0.8];
/// let orders = [ServingOrder::MoveFirst, ServingOrder::AnswerFirst];
/// let results = run_batch(&inst, &MoveToCenter::new(), &deltas, &orders);
///
/// assert_eq!(results.len(), deltas.len() * orders.len());
/// // δ-major, order-minor: entry 0 is (δ=0.0, MoveFirst).
/// assert_eq!(results[0].delta, 0.0);
/// assert_eq!(results[0].order, ServingOrder::MoveFirst);
/// // More augmentation never hurts Move-to-Center on this workload:
/// // entry 4 is (δ=0.8, MoveFirst), entry 0 is (δ=0.0, MoveFirst).
/// assert!(results[4].total_cost() <= results[0].total_cost());
/// ```
///
/// # Panics
/// Panics when `deltas` or `orders` is empty.
pub fn run_batch<const N: usize, A: OnlineAlgorithm<N> + Clone + Send>(
    instance: &Instance<N>,
    algorithm: &A,
    deltas: &[f64],
    orders: &[ServingOrder],
) -> Vec<RunResult<N>> {
    run_batch_with(instance, algorithm, deltas, orders, BatchOptions::default())
}

/// [`run_batch`] with explicit [`BatchOptions`] (lane parallelism and
/// cross-lane warm seeding).
///
/// # Panics
/// Panics when `deltas` or `orders` is empty.
pub fn run_batch_with<const N: usize, A: OnlineAlgorithm<N> + Clone + Send>(
    instance: &Instance<N>,
    algorithm: &A,
    deltas: &[f64],
    orders: &[ServingOrder],
    opts: BatchOptions,
) -> Vec<RunResult<N>> {
    assert!(!deltas.is_empty(), "run_batch needs at least one δ");
    assert!(!orders.is_empty(), "run_batch needs at least one order");

    let lanes: Vec<BatchLane<N, A>> = deltas
        .iter()
        .map(|&delta| {
            let ctx = AlgContext::new(instance, delta);
            let mut algorithm = algorithm.clone();
            algorithm.reset(&ctx);
            let mut positions = Vec::with_capacity(instance.horizon() + 1);
            positions.push(instance.start);
            BatchLane {
                budget: ctx.online_budget(),
                ctx,
                algorithm,
                current: instance.start,
                positions,
                costs: orders
                    .iter()
                    .map(|_| CostBreakdown {
                        per_step: Vec::with_capacity(instance.horizon()),
                        ..Default::default()
                    })
                    .collect(),
            }
        })
        .collect();

    let group_size = opts.group_size(lanes.len());
    let mut groups = partition_groups(lanes, group_size);

    msp_analysis::sweep::parallel_for_each_mut(&mut groups, opts.threads, |_, group| {
        advance_lane_group(group, &instance.steps, orders, opts.cross_lane_seed);
    });

    let mut out = Vec::with_capacity(deltas.len() * orders.len());
    for (lane, &delta) in groups.into_iter().flatten().zip(deltas) {
        let name = lane.algorithm.name();
        for (&order, cost) in orders.iter().zip(lane.costs) {
            out.push(RunResult {
                algorithm: name.clone(),
                order,
                delta,
                positions: lane.positions.clone(),
                cost,
            });
        }
    }
    out
}

/// Outcome of a streaming run: totals only, O(1) in the horizon. The full
/// position trace is deliberately absent — streaming runs exist precisely
/// so multi-million-step horizons do not accumulate per-step state.
#[derive(Clone, Debug)]
pub struct StreamRunResult<const N: usize> {
    /// Algorithm name, for tables.
    pub algorithm: String,
    /// Serving order the run was priced under.
    pub order: ServingOrder,
    /// Augmentation factor δ granted to the algorithm.
    pub delta: f64,
    /// Number of steps consumed.
    pub steps: usize,
    /// Server position after the last step.
    pub final_position: Point<N>,
    /// Total weighted movement cost.
    pub movement: f64,
    /// Total service cost.
    pub service: f64,
    /// Largest single-step displacement actually used.
    pub max_step_used: f64,
}

impl<const N: usize> StreamRunResult<N> {
    /// Total cost `C_Alg`.
    pub fn total_cost(&self) -> f64 {
        self.movement + self.service
    }
}

/// Resumable snapshot of a streaming run: the server position and the
/// running cost totals. The algorithm's warm state (e.g. the median
/// solver's seed) is the algorithm value itself — keep it alongside the
/// checkpoint (see [`StreamingSim::into_parts`]) for exact-decision
/// resumption, or pass a fresh algorithm and let it re-warm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamCheckpoint<const N: usize> {
    /// Steps consumed so far.
    pub step: usize,
    /// Server position after `step` steps.
    pub position: Point<N>,
    /// Weighted movement cost so far.
    pub movement: f64,
    /// Service cost so far.
    pub service: f64,
    /// Largest single-step displacement so far.
    pub max_step_used: f64,
}

/// Push-style streaming simulation engine: feed steps one at a time,
/// inspect running totals, snapshot checkpoints, and finish into a
/// [`StreamRunResult`]. Decisions, clamping, and pricing use exactly the
/// same arithmetic as [`run`], so a streamed pass over an instance's steps
/// reproduces the batch result bit for bit (pinned by tests).
#[derive(Clone, Debug)]
pub struct StreamingSim<const N: usize, A> {
    ctx: AlgContext<N>,
    budget: f64,
    order: ServingOrder,
    algorithm: A,
    current: Point<N>,
    steps: usize,
    movement: f64,
    service: f64,
    max_step_used: f64,
    /// Steps fed since the last observability flush (metrics-only state:
    /// never checkpointed, never compared, never affects a trajectory).
    obs_pending: u32,
}

impl<const N: usize, A: OnlineAlgorithm<N>> StreamingSim<N, A> {
    /// Starts a streaming run from `params.start` with a freshly reset
    /// algorithm.
    pub fn new(
        params: &StreamParams<N>,
        mut algorithm: A,
        delta: f64,
        order: ServingOrder,
    ) -> Self {
        let ctx = AlgContext::from_params(params, delta);
        algorithm.reset(&ctx);
        obs::incr(obs::Counter::StreamSessions);
        StreamingSim {
            budget: ctx.online_budget(),
            ctx,
            order,
            algorithm,
            current: params.start,
            steps: 0,
            movement: 0.0,
            service: 0.0,
            max_step_used: 0.0,
            obs_pending: 0,
        }
    }

    /// Resumes a streaming run from `checkpoint`. The algorithm is taken
    /// as-is (NOT reset): pass back the warm algorithm captured at the
    /// checkpoint for exact continuation, or a self-warming algorithm such
    /// as Move-to-Center, which rebuilds its solver state in one step.
    pub fn resume(
        params: &StreamParams<N>,
        algorithm: A,
        delta: f64,
        order: ServingOrder,
        checkpoint: &StreamCheckpoint<N>,
    ) -> Self {
        let ctx = AlgContext::from_params(params, delta);
        obs::incr(obs::Counter::StreamSessions);
        StreamingSim {
            budget: ctx.online_budget(),
            ctx,
            order,
            algorithm,
            current: checkpoint.position,
            steps: checkpoint.step,
            movement: checkpoint.movement,
            service: checkpoint.service,
            max_step_used: checkpoint.max_step_used,
            obs_pending: 0,
        }
    }

    /// Resumes a streaming run from `checkpoint` plus an encoded
    /// warm-state blob — the durable-recovery counterpart of
    /// [`StreamingSim::resume`]. The algorithm is reset (giving it the
    /// context) and then restored from `warm_state` via its
    /// [`WarmStateCodec`], so the continuation's decisions are bit-equal
    /// to a run that was never interrupted; the blob typically comes from
    /// a checkpoint journal (`msp-scenarios`' `journal` module).
    ///
    /// # Errors
    /// Returns [`WarmStateError`] when the blob does not decode — journal
    /// bytes are untrusted, so corruption is reported, never papered over.
    pub fn resume_with_warm_state(
        params: &StreamParams<N>,
        mut algorithm: A,
        delta: f64,
        order: ServingOrder,
        checkpoint: &StreamCheckpoint<N>,
        warm_state: &[u8],
    ) -> Result<Self, WarmStateError>
    where
        A: WarmStateCodec,
    {
        let ctx = AlgContext::from_params(params, delta);
        algorithm.reset(&ctx);
        algorithm.decode_warm_state(warm_state)?;
        obs::incr(obs::Counter::StreamSessions);
        Ok(StreamingSim {
            budget: ctx.online_budget(),
            ctx,
            order,
            algorithm,
            current: checkpoint.position,
            steps: checkpoint.step,
            movement: checkpoint.movement,
            service: checkpoint.service,
            max_step_used: checkpoint.max_step_used,
            obs_pending: 0,
        })
    }

    /// Encodes the algorithm's current warm state (see [`WarmStateCodec`])
    /// — what a durable checkpoint writer persists next to
    /// [`StreamingSim::checkpoint`].
    pub fn warm_state_bytes(&self) -> Vec<u8>
    where
        A: WarmStateCodec,
    {
        let mut out = Vec::new();
        self.algorithm.encode_warm_state(&mut out);
        out
    }

    /// Advances the simulation by one step, returning that step's cost.
    pub fn feed(&mut self, step: &Step<N>) -> StepCost {
        self.feed_requests(&step.requests)
    }

    /// [`StreamingSim::feed`] over a borrowed request slice — the
    /// zero-allocation replay hook: a trace reader that yields borrowed
    /// frames (`msp-scenarios`' block-trace reader) drives the simulation
    /// without materializing a [`Step`] per frame. Bit-equal to `feed` on
    /// the same requests by construction (that method delegates here).
    pub fn feed_requests(&mut self, requests: &[Point<N>]) -> StepCost {
        let proposal = self.algorithm.decide(&self.current, requests, &self.ctx);
        debug_assert!(
            proposal.is_finite(),
            "{} proposed a non-finite position",
            self.algorithm.name()
        );
        let next = step_towards(&self.current, &proposal, self.budget);
        let step_len = self.current.distance(&next);
        let movement = self.ctx.d * step_len;
        let serve_from = match self.order {
            ServingOrder::MoveFirst => &next,
            ServingOrder::AnswerFirst => &self.current,
        };
        let service = service_cost(serve_from, requests);
        self.movement += movement;
        self.service += service;
        self.max_step_used = self.max_step_used.max(step_len);
        self.current = next;
        self.steps += 1;
        self.obs_pending += 1;
        if self.obs_pending >= OBS_STEP_FLUSH {
            obs::add(obs::Counter::StreamSteps, u64::from(self.obs_pending));
            self.obs_pending = 0;
        }
        StepCost { movement, service }
    }

    /// Advances by at most `budget` steps pulled from `next`, stopping
    /// early when the source runs dry. Returns the number of steps fed.
    ///
    /// This is the supervision hook for drivers that must be able to
    /// cancel a runaway advance: feeding happens in bounded slices, so a
    /// watchdog (e.g. `msp-scenarios`' session service) checks its step
    /// budget between slices and stops at a slice boundary — there is no
    /// mid-step cancellation, and a cancelled advance leaves the
    /// simulation in an ordinary checkpointable state. Each step uses
    /// [`StreamingSim::feed`], so budgeted and unbudgeted advances of the
    /// same step sequence are bit-equal.
    pub fn feed_budgeted<F>(&mut self, budget: usize, mut next: F) -> usize
    where
        F: FnMut() -> Option<Step<N>>,
    {
        let mut fed = 0usize;
        while fed < budget {
            let Some(step) = next() else { break };
            self.feed(&step);
            fed += 1;
        }
        fed
    }

    /// Steps consumed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Current server position.
    pub fn position(&self) -> &Point<N> {
        &self.current
    }

    /// Total cost so far.
    pub fn total_cost(&self) -> f64 {
        self.movement + self.service
    }

    /// Read access to the algorithm (e.g. for warm-state telemetry).
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// Snapshot of the resumable run state.
    pub fn checkpoint(&self) -> StreamCheckpoint<N> {
        obs::incr(obs::Counter::StreamCheckpoints);
        StreamCheckpoint {
            step: self.steps,
            position: self.current,
            movement: self.movement,
            service: self.service,
            max_step_used: self.max_step_used,
        }
    }

    /// Splits the run into the (warm) algorithm and the checkpoint — what
    /// a caller persists to resume later via [`StreamingSim::resume`].
    pub fn into_parts(self) -> (A, StreamCheckpoint<N>) {
        obs::add(obs::Counter::StreamSteps, u64::from(self.obs_pending));
        let cp = StreamCheckpoint {
            step: self.steps,
            position: self.current,
            movement: self.movement,
            service: self.service,
            max_step_used: self.max_step_used,
        };
        (self.algorithm, cp)
    }

    /// Finalizes the run.
    pub fn finish(self) -> StreamRunResult<N> {
        obs::add(obs::Counter::StreamSteps, u64::from(self.obs_pending));
        StreamRunResult {
            algorithm: self.algorithm.name(),
            order: self.order,
            delta: self.ctx.delta,
            steps: self.steps,
            final_position: self.current,
            movement: self.movement,
            service: self.service,
            max_step_used: self.max_step_used,
        }
    }
}

/// Runs `algorithm` over an open-ended step stream with O(1) memory in the
/// stream length. Costs agree with [`run`] on the same step sequence to
/// floating-point identity (same decision/clamping/pricing arithmetic).
pub fn run_streaming<const N: usize, A, I>(
    params: &StreamParams<N>,
    steps: I,
    algorithm: A,
    delta: f64,
    order: ServingOrder,
) -> StreamRunResult<N>
where
    A: OnlineAlgorithm<N>,
    I: IntoIterator<Item = Step<N>>,
{
    let mut sim = StreamingSim::new(params, algorithm, delta, order);
    for step in steps {
        sim.feed(&step);
    }
    sim.finish()
}

/// [`run_streaming`] with a periodic checkpoint callback: every `every`
/// steps the callback receives the resumable snapshot and a reference to
/// the warm algorithm. Multi-million-step runs persist these to survive
/// interruption.
///
/// # Panics
/// Panics when `every` is zero.
pub fn run_streaming_with_checkpoints<const N: usize, A, I, F>(
    params: &StreamParams<N>,
    steps: I,
    algorithm: A,
    delta: f64,
    order: ServingOrder,
    every: usize,
    mut on_checkpoint: F,
) -> StreamRunResult<N>
where
    A: OnlineAlgorithm<N>,
    I: IntoIterator<Item = Step<N>>,
    F: FnMut(&StreamCheckpoint<N>, &A),
{
    assert!(every > 0, "checkpoint interval must be positive");
    let mut sim = StreamingSim::new(params, algorithm, delta, order);
    for step in steps {
        sim.feed(&step);
        if sim.steps() % every == 0 {
            on_checkpoint(&sim.checkpoint(), sim.algorithm());
        }
    }
    sim.finish()
}

/// Number of steps buffered per block by the streaming batch engine:
/// large enough to amortize the per-block lane fan-out (a ticket push to
/// the persistent sweep pool — lane groups reuse the same workers across
/// blocks, with no spawn/join barrier per block), small enough that
/// memory stays bounded (`O(block · r)`) on open-ended streams.
const STREAM_BATCH_BLOCK: usize = 256;

/// Streaming counterpart of [`run_batch`]: one pass over an open-ended
/// step stream prices every `(δ, order)` combination, keeping only running
/// totals plus a bounded step buffer (`STREAM_BATCH_BLOCK` = 256 steps —
/// the blocks let δ-lane groups fan out over cores without materializing
/// the stream). Results are δ-major, order-minor, and match [`run_batch`] on
/// the same steps bit for bit: the lane grouping, warm seeding, and
/// pricing arithmetic are identical, only the step delivery is blocked.
///
/// # Panics
/// Panics when `deltas` or `orders` is empty.
pub fn run_streaming_batch<const N: usize, A, I>(
    params: &StreamParams<N>,
    steps: I,
    algorithm: &A,
    deltas: &[f64],
    orders: &[ServingOrder],
) -> Vec<StreamRunResult<N>>
where
    A: OnlineAlgorithm<N> + Clone + Send,
    I: IntoIterator<Item = Step<N>>,
{
    run_streaming_batch_with(
        params,
        steps,
        algorithm,
        deltas,
        orders,
        BatchOptions::default(),
    )
}

/// [`run_streaming_batch`] with explicit [`BatchOptions`]. The options
/// must match the [`run_batch_with`] call being mirrored for bit-exact
/// agreement (the default mirrors the default).
///
/// # Panics
/// Panics when `deltas` or `orders` is empty.
pub fn run_streaming_batch_with<const N: usize, A, I>(
    params: &StreamParams<N>,
    steps: I,
    algorithm: &A,
    deltas: &[f64],
    orders: &[ServingOrder],
    opts: BatchOptions,
) -> Vec<StreamRunResult<N>>
where
    A: OnlineAlgorithm<N> + Clone + Send,
    I: IntoIterator<Item = Step<N>>,
{
    assert!(
        !deltas.is_empty(),
        "run_streaming_batch needs at least one δ"
    );
    assert!(
        !orders.is_empty(),
        "run_streaming_batch needs at least one order"
    );

    struct Lane<const N: usize, A> {
        ctx: AlgContext<N>,
        budget: f64,
        algorithm: A,
        current: Point<N>,
        max_step_used: f64,
        // (movement, service) per serving order.
        totals: Vec<(f64, f64)>,
    }

    impl<const N: usize, A: OnlineAlgorithm<N>> SeedableLane<N> for Lane<N, A> {
        type Alg = A;

        fn algorithm(&self) -> &A {
            &self.algorithm
        }

        fn algorithm_mut(&mut self) -> &mut A {
            &mut self.algorithm
        }

        fn feed(&mut self, step: &Step<N>, orders: &[ServingOrder]) {
            let totals = &mut self.totals;
            let (next, step_len) = price_lane_step(
                &mut self.algorithm,
                &self.ctx,
                self.budget,
                &self.current,
                step,
                orders,
                |oi, movement, service| {
                    let (mv, sv) = &mut totals[oi];
                    *mv += movement;
                    *sv += service;
                },
            );
            self.max_step_used = self.max_step_used.max(step_len);
            self.current = next;
        }
    }

    let lanes: Vec<Lane<N, A>> = deltas
        .iter()
        .map(|&delta| {
            let ctx = AlgContext::from_params(params, delta);
            let mut algorithm = algorithm.clone();
            algorithm.reset(&ctx);
            Lane {
                budget: ctx.online_budget(),
                ctx,
                algorithm,
                current: params.start,
                max_step_used: 0.0,
                totals: vec![(0.0, 0.0); orders.len()],
            }
        })
        .collect();

    // Same group shape and the same `advance_lane_group` stepping as
    // `run_batch_with`, so the cross-lane seeding pattern (and hence
    // every decision) is identical.
    let group_size = opts.group_size(lanes.len());
    let mut groups = partition_groups(lanes, group_size);

    let mut steps_seen = 0usize;
    let mut steps = steps.into_iter();
    let mut block: Vec<Step<N>> = Vec::with_capacity(STREAM_BATCH_BLOCK);
    loop {
        block.clear();
        block.extend(steps.by_ref().take(STREAM_BATCH_BLOCK));
        if block.is_empty() {
            break;
        }
        steps_seen += block.len();
        obs::incr(obs::Counter::StreamBlocks);
        obs::record(obs::Hist::StreamBlockFill, block.len() as u64);
        let block_ref = &block;
        msp_analysis::sweep::parallel_for_each_mut(&mut groups, opts.threads, |_, group| {
            advance_lane_group(group, block_ref, orders, opts.cross_lane_seed);
        });
    }

    let mut out = Vec::with_capacity(deltas.len() * orders.len());
    for (lane, &delta) in groups.into_iter().flatten().zip(deltas) {
        let name = lane.algorithm.name();
        for (&order, (movement, service)) in orders.iter().zip(lane.totals) {
            out.push(StreamRunResult {
                algorithm: name.clone(),
                order,
                delta,
                steps: steps_seen,
                final_position: lane.current,
                movement,
                service,
                max_step_used: lane.max_step_used,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{FollowCenter, Lazy};
    use crate::cost::evaluate_trajectory;
    use crate::model::Step;
    use crate::mtc::MoveToCenter;
    use msp_geometry::P2;

    fn chase_instance(t: usize) -> Instance<2> {
        // Requests march right at speed 1 starting from x = 1.
        let steps = (0..t)
            .map(|i| Step::single(P2::xy(1.0 + i as f64, 0.0)))
            .collect();
        Instance::new(1.0, 1.0, P2::origin(), steps)
    }

    #[test]
    fn run_cost_matches_trajectory_pricing() {
        // The simulator's online accounting must agree with the offline
        // trajectory evaluator on the trajectory it produced.
        let inst = chase_instance(10);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let mut alg = MoveToCenter::new();
            let res = run(&inst, &mut alg, 0.5, order);
            let priced = evaluate_trajectory(&inst, &res.positions, order);
            assert!((priced.total() - res.total_cost()).abs() < 1e-9);
            assert!((priced.movement - res.cost.movement).abs() < 1e-9);
        }
    }

    #[test]
    fn budget_is_enforced_even_for_greedy() {
        let inst = chase_instance(5);
        let mut alg = FollowCenter::new();
        let res = run_move_first(&inst, &mut alg, 0.0);
        assert!(res.max_step_used() <= inst.max_move + 1e-9);
    }

    #[test]
    fn augmentation_extends_budget() {
        let inst = Instance::new(
            1.0,
            1.0,
            P2::origin(),
            vec![Step::single(P2::xy(10.0, 0.0))],
        );
        let mut alg = FollowCenter::new();
        let res = run_move_first(&inst, &mut alg, 1.0);
        assert!((res.max_step_used() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lazy_has_zero_movement_cost() {
        let inst = chase_instance(8);
        let mut alg = Lazy;
        let res = run_move_first(&inst, &mut alg, 0.0);
        assert_eq!(res.cost.movement, 0.0);
        // Service cost: Σ_{i=0..7} (1+i) = 36.
        assert!((res.cost.service - 36.0).abs() < 1e-9);
    }

    #[test]
    fn positions_have_horizon_plus_one_entries() {
        let inst = chase_instance(7);
        let mut alg = MoveToCenter::new();
        let res = run_move_first(&inst, &mut alg, 0.0);
        assert_eq!(res.positions.len(), 8);
        assert_eq!(res.cost.per_step.len(), 7);
        assert_eq!(res.positions[0], inst.start);
    }

    #[test]
    fn answer_first_charges_old_position() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![Step::single(P2::xy(1.0, 0.0))]);
        // FollowCenter reaches the request in one step.
        let mut alg = FollowCenter::new();
        let mf = run(&inst, &mut alg, 0.0, ServingOrder::MoveFirst);
        let af = run(&inst, &mut alg, 0.0, ServingOrder::AnswerFirst);
        // Move-first: move 1 + serve 0 = 1. Answer-first: serve 1 + move 1 = 2.
        assert!((mf.total_cost() - 1.0).abs() < 1e-9);
        assert!((af.total_cost() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mtc_catches_stationary_requests() {
        // A fixed request point: MtC converges onto it and total cost stays
        // bounded (no per-step cost once arrived).
        let steps = vec![Step::repeated(P2::xy(3.0, 0.0), 4); 50];
        let inst = Instance::new(2.0, 1.0, P2::origin(), steps);
        let mut alg = MoveToCenter::new();
        let res = run_move_first(&inst, &mut alg, 0.0);
        let last = res.positions.last().unwrap();
        assert!(last.distance(&P2::xy(3.0, 0.0)) < 1e-9);
        // Tail steps are free.
        let tail: f64 = res.cost.per_step[10..].iter().map(|s| s.total()).sum();
        assert!(tail < 1e-9, "tail cost {tail}");
    }

    #[test]
    fn deterministic_reruns_agree() {
        let inst = chase_instance(20);
        let mut alg = MoveToCenter::new();
        let a = run_move_first(&inst, &mut alg, 0.3);
        let b = run_move_first(&inst, &mut alg, 0.3);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.total_cost(), b.total_cost());
    }

    #[test]
    fn run_batch_matches_repeated_runs() {
        let inst = chase_instance(25);
        let deltas = [0.0, 0.1, 0.5, 1.0];
        let orders = [ServingOrder::MoveFirst, ServingOrder::AnswerFirst];
        let batch = run_batch(&inst, &MoveToCenter::new(), &deltas, &orders);
        assert_eq!(batch.len(), deltas.len() * orders.len());
        let mut i = 0;
        for &delta in &deltas {
            for &order in &orders {
                let mut alg = MoveToCenter::new();
                let single = run(&inst, &mut alg, delta, order);
                let b = &batch[i];
                assert_eq!(b.delta, delta);
                assert_eq!(b.order, order);
                assert_eq!(b.positions.len(), single.positions.len());
                // Default options may seed across lanes (the group shape
                // follows the core count), so the guarantee is solver
                // tolerance, not bit-equality — strict mode is pinned
                // exactly in tests/perf_parity.rs.
                for (p, q) in b.positions.iter().zip(&single.positions) {
                    assert!(p.distance(q) < 1e-8, "δ={delta} {order:?}");
                }
                assert!((b.total_cost() - single.total_cost()).abs() < 1e-8);
                i += 1;
            }
        }
    }

    #[test]
    fn run_batch_shares_trajectory_across_orders() {
        let inst = chase_instance(10);
        let batch = run_batch(
            &inst,
            &MoveToCenter::new(),
            &[0.25],
            &[ServingOrder::MoveFirst, ServingOrder::AnswerFirst],
        );
        assert_eq!(batch[0].positions, batch[1].positions);
        // Same movement, different service pricing.
        assert_eq!(batch[0].cost.movement, batch[1].cost.movement);
    }

    #[test]
    #[should_panic(expected = "at least one δ")]
    fn run_batch_rejects_empty_deltas() {
        let inst = chase_instance(2);
        let _ = run_batch(&inst, &MoveToCenter::new(), &[], &[ServingOrder::MoveFirst]);
    }

    #[test]
    fn run_streaming_matches_run_exactly() {
        let inst = chase_instance(40);
        for order in [ServingOrder::MoveFirst, ServingOrder::AnswerFirst] {
            let mut alg = MoveToCenter::new();
            let batch = run(&inst, &mut alg, 0.3, order);
            let streamed = run_streaming(
                &inst.params(),
                inst.steps.iter().cloned(),
                MoveToCenter::new(),
                0.3,
                order,
            );
            assert_eq!(streamed.steps, inst.horizon());
            assert_eq!(streamed.movement, batch.cost.movement);
            assert_eq!(streamed.service, batch.cost.service);
            assert_eq!(streamed.final_position, *batch.positions.last().unwrap());
            assert_eq!(streamed.max_step_used, batch.max_step_used());
        }
    }

    #[test]
    fn run_streaming_batch_matches_run_batch_exactly() {
        let inst = chase_instance(30);
        let deltas = [0.0, 0.25, 1.0];
        let orders = [ServingOrder::MoveFirst, ServingOrder::AnswerFirst];
        let batch = run_batch(&inst, &MoveToCenter::new(), &deltas, &orders);
        let streamed = run_streaming_batch(
            &inst.params(),
            inst.steps.iter().cloned(),
            &MoveToCenter::new(),
            &deltas,
            &orders,
        );
        assert_eq!(streamed.len(), batch.len());
        for (s, b) in streamed.iter().zip(&batch) {
            assert_eq!(s.delta, b.delta);
            assert_eq!(s.order, b.order);
            assert_eq!(s.movement, b.cost.movement);
            assert_eq!(s.service, b.cost.service);
            assert_eq!(s.final_position, *b.positions.last().unwrap());
        }
    }

    #[test]
    fn checkpoint_resume_reproduces_the_full_run() {
        let inst = chase_instance(24);
        let full = run_streaming(
            &inst.params(),
            inst.steps.iter().cloned(),
            MoveToCenter::new(),
            0.4,
            ServingOrder::MoveFirst,
        );

        // First half, snapshot, resume with the warm algorithm, second half.
        let mut sim = StreamingSim::new(
            &inst.params(),
            MoveToCenter::new(),
            0.4,
            ServingOrder::MoveFirst,
        );
        for step in &inst.steps[..12] {
            sim.feed(step);
        }
        let (warm, cp) = sim.into_parts();
        assert_eq!(cp.step, 12);
        let mut resumed =
            StreamingSim::resume(&inst.params(), warm, 0.4, ServingOrder::MoveFirst, &cp);
        for step in &inst.steps[12..] {
            resumed.feed(step);
        }
        let res = resumed.finish();
        assert_eq!(res.steps, full.steps);
        assert_eq!(res.movement, full.movement);
        assert_eq!(res.service, full.service);
        assert_eq!(res.final_position, full.final_position);
    }

    #[test]
    fn periodic_checkpoints_fire_at_the_interval() {
        let inst = chase_instance(20);
        let mut seen = Vec::new();
        let res = run_streaming_with_checkpoints(
            &inst.params(),
            inst.steps.iter().cloned(),
            MoveToCenter::new(),
            0.0,
            ServingOrder::MoveFirst,
            6,
            |cp, _alg| seen.push(cp.step),
        );
        assert_eq!(seen, vec![6, 12, 18]);
        assert_eq!(res.steps, 20);
    }

    #[test]
    fn streaming_step_cost_totals_are_consistent() {
        let inst = chase_instance(15);
        let mut sim = StreamingSim::new(
            &inst.params(),
            FollowCenter::new(),
            0.0,
            ServingOrder::MoveFirst,
        );
        let mut acc = 0.0;
        for step in &inst.steps {
            acc += sim.feed(step).total();
        }
        assert!((acc - sim.total_cost()).abs() < 1e-12);
        assert_eq!(sim.steps(), 15);
    }

    #[test]
    #[should_panic(expected = "at least one δ")]
    fn run_streaming_batch_rejects_empty_deltas() {
        let inst = chase_instance(2);
        let _ = run_streaming_batch(
            &inst.params(),
            inst.steps.iter().cloned(),
            &MoveToCenter::new(),
            &[],
            &[ServingOrder::MoveFirst],
        );
    }

    #[test]
    fn run_metadata_recorded() {
        let inst = chase_instance(3);
        let mut alg = MoveToCenter::new();
        let res = run(&inst, &mut alg, 0.25, ServingOrder::AnswerFirst);
        assert_eq!(res.algorithm, "mtc");
        assert_eq!(res.order, ServingOrder::AnswerFirst);
        assert_eq!(res.delta, 0.25);
    }
}
