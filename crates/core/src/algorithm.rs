//! The online-algorithm interface.
//!
//! An online algorithm sees, in each step, its current position and the
//! requests of the step (the model reveals the requests *before* the move
//! in both serving orders — the orders differ only in which endpoint pays
//! the service cost). It proposes a new position; the simulator enforces
//! the movement budget by clamping the proposal onto the segment towards
//! it, so no algorithm can cheat the speed limit.

use crate::model::{Instance, StreamParams};
use msp_geometry::Point;

/// Static context handed to an algorithm at reset and on every decision.
#[derive(Clone, Copy, Debug)]
pub struct AlgContext<const N: usize> {
    /// Movement cost weight `D ≥ 1` of the instance.
    pub d: f64,
    /// The *offline* movement limit `m` of the instance.
    pub max_move: f64,
    /// Resource augmentation factor `δ ∈ [0, 1]`: the online algorithm may
    /// move up to `(1+δ)·m` per step. `δ = 0` disables augmentation.
    pub delta: f64,
    /// Common start position `P_0`.
    pub start: Point<N>,
}

impl<const N: usize> AlgContext<N> {
    /// Builds the context for running an algorithm on `instance` with
    /// augmentation `delta`.
    ///
    /// # Panics
    /// Panics when `delta` is negative or not finite. The paper restricts
    /// attention to `δ ∈ (0, 1]` (beyond `δ = 1` no further asymptotic gain
    /// is possible); we allow any non-negative value so experiments can
    /// probe the unaugmented and over-augmented regimes too.
    pub fn new(instance: &Instance<N>, delta: f64) -> Self {
        Self::from_params(&instance.params(), delta)
    }

    /// Builds the context from bare [`StreamParams`] — the constructor
    /// streaming drivers use when no materialized [`Instance`] exists.
    ///
    /// # Panics
    /// Panics when `delta` is negative or not finite (see [`Self::new`]).
    pub fn from_params(params: &StreamParams<N>, delta: f64) -> Self {
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "augmentation δ must be a finite non-negative number, got {delta}"
        );
        AlgContext {
            d: params.d,
            max_move: params.max_move,
            delta,
            start: params.start,
        }
    }

    /// The online movement budget `(1+δ)·m` per step.
    #[inline]
    pub fn online_budget(&self) -> f64 {
        (1.0 + self.delta) * self.max_move
    }
}

/// A deterministic or (internally seeded) randomized online algorithm for
/// the Mobile Server Problem.
pub trait OnlineAlgorithm<const N: usize> {
    /// Stable name used in experiment tables and traces.
    fn name(&self) -> String;

    /// Clears all internal state and positions the algorithm at
    /// `ctx.start`. Called once before a run; implementations must be
    /// reusable across runs after `reset`.
    fn reset(&mut self, ctx: &AlgContext<N>);

    /// Proposes the next server position given the current position and
    /// the step's requests. The simulator clamps the proposal to the
    /// movement budget along the straight segment, so returning an
    /// unreachable point moves the server maximally towards it.
    fn decide(
        &mut self,
        current: &Point<N>,
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Point<N>;

    /// Offers the internal state of a *neighboring configuration* of the
    /// same algorithm (e.g. the adjacent δ-lane of a batched sweep, which
    /// just decided on the **same step**) as a numerical warm-start hint.
    ///
    /// Implementations may only use the hint to accelerate convergence —
    /// never to change which point they would decide on beyond solver
    /// tolerance — so batched engines stay interchangeable with
    /// sequential runs. The default is a no-op; [`crate::mtc::MoveToCenter`]
    /// seeds its median solver from the neighbor's last center.
    fn warm_hint(&mut self, _neighbor: &Self)
    where
        Self: Sized,
    {
    }
}

/// Failure decoding a persisted warm-state blob (see [`WarmStateCodec`]).
///
/// Warm-state bytes come from checkpoint journals on disk, so a decoder
/// must treat them as untrusted: wrong lengths, unknown tags, and
/// non-finite coordinates are reported here instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarmStateError {
    /// What was wrong with the blob.
    pub message: String,
}

impl WarmStateError {
    /// Builds an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        WarmStateError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WarmStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt warm-state blob: {}", self.message)
    }
}

impl std::error::Error for WarmStateError {}

/// Byte-level persistence of an algorithm's **decision-relevant warm
/// state** — what a durable checkpoint must carry alongside a
/// [`crate::simulator::StreamCheckpoint`] so that a crashed streaming run
/// can resume *bit-equal* to the uninterrupted run.
///
/// The contract mirrors [`OnlineAlgorithm::warm_hint`]: the encoded state
/// is everything that influences future `decide` calls beyond the
/// algorithm's configuration. Scratch buffers and telemetry are excluded;
/// numerical warm iterates (e.g. the median solver's previous center) are
/// included **bit-exactly**, because resuming with different starting
/// iterates would produce decisions that differ at the last ulp and
/// diverge from the uninterrupted trajectory.
///
/// Round-trip law, pinned by tests: for any reachable state `s`,
/// `decode(encode(s))` after a [`OnlineAlgorithm::reset`] restores a state
/// whose subsequent decisions are bit-identical to continuing from `s`.
/// Decoders must reject malformed input with [`WarmStateError`], never
/// panic — journal blobs are untrusted bytes.
pub trait WarmStateCodec {
    /// Appends the warm state to `out`. An empty encoding is valid (the
    /// stateless baselines encode nothing).
    fn encode_warm_state(&self, out: &mut Vec<u8>);

    /// Restores the warm state from `bytes` (as produced by
    /// [`WarmStateCodec::encode_warm_state`]). Called on a freshly
    /// [`OnlineAlgorithm::reset`] instance.
    fn decode_warm_state(&mut self, bytes: &[u8]) -> Result<(), WarmStateError>;
}

/// Encodes a fixed-dimension point as `8·N` little-endian IEEE-754 bit
/// patterns — the building block warm-state codecs share.
pub fn encode_point<const N: usize>(p: &Point<N>, out: &mut Vec<u8>) {
    for c in p.coords() {
        out.extend_from_slice(&c.to_bits().to_le_bytes());
    }
}

/// Decodes a point written by [`encode_point`], validating length and
/// finiteness.
pub fn decode_point<const N: usize>(bytes: &[u8]) -> Result<Point<N>, WarmStateError> {
    if bytes.len() != 8 * N {
        return Err(WarmStateError::new(format!(
            "point blob has {} bytes, expected {}",
            bytes.len(),
            8 * N
        )));
    }
    let mut p = Point::<N>::origin();
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        p[i] = f64::from_bits(u64::from_le_bytes(raw));
    }
    if !p.is_finite() {
        return Err(WarmStateError::new("non-finite warm-state coordinate"));
    }
    Ok(p)
}

/// Object-safe alias for heterogeneous algorithm collections (experiment
/// tables iterate over `Vec<BoxedAlgorithm<N>>`).
pub type BoxedAlgorithm<const N: usize> = Box<dyn OnlineAlgorithm<N>>;

impl<const N: usize> OnlineAlgorithm<N> for BoxedAlgorithm<N> {
    fn name(&self) -> String {
        self.as_ref().name()
    }
    fn reset(&mut self, ctx: &AlgContext<N>) {
        self.as_mut().reset(ctx);
    }
    fn decide(
        &mut self,
        current: &Point<N>,
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Point<N> {
        self.as_mut().decide(current, requests, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Instance, Step};
    use msp_geometry::P2;

    #[test]
    fn context_budget_applies_augmentation() {
        let inst = Instance::new(2.0, 0.5, P2::origin(), vec![Step::new(vec![])]);
        let ctx = AlgContext::new(&inst, 0.2);
        assert!((ctx.online_budget() - 0.6).abs() < 1e-12);
        let ctx0 = AlgContext::new(&inst, 0.0);
        assert!((ctx0.online_budget() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "augmentation")]
    fn negative_delta_rejected() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        let _ = AlgContext::new(&inst, -0.1);
    }

    #[test]
    fn boxed_algorithm_dispatches() {
        struct Stay;
        impl OnlineAlgorithm<2> for Stay {
            fn name(&self) -> String {
                "stay".into()
            }
            fn reset(&mut self, _ctx: &AlgContext<2>) {}
            fn decide(&mut self, cur: &P2, _req: &[P2], _ctx: &AlgContext<2>) -> P2 {
                *cur
            }
        }
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        let ctx = AlgContext::new(&inst, 0.0);
        let mut boxed: BoxedAlgorithm<2> = Box::new(Stay);
        boxed.reset(&ctx);
        assert_eq!(boxed.name(), "stay");
        let p = P2::xy(1.0, 2.0);
        assert_eq!(boxed.decide(&p, &[], &ctx), p);
    }
}
