//! The Moving-Client variant (Section 5).
//!
//! A single *agent* issues the requests and is itself speed-limited: it
//! starts at the common origin `A_0 = P_0` and moves at most `m_a` per
//! step; the server moves at most `m_s`. In round `t` the agent position
//! `A_t` is revealed, the server moves (knowing `A_t`), and pays
//! `D·d(P_{t-1}, P_t) + d(P_t, A_t)` — i.e. exactly the Move-First model
//! with one request per step located at `A_t`.
//!
//! The paper's results:
//! * Theorem 8 — with `m_a = (1+ε)·m_s` no online algorithm beats
//!   `Ω(√T·ε/(1+ε))` (the agent can run away).
//! * Corollary 9 — with augmentation `(1+δ)m_s` MtC is
//!   `O(1/δ^{3/2})`-competitive.
//! * Theorem 10 — with `m_s ≥ m_a` MtC is `O(1)`-competitive **without**
//!   augmentation. The algorithm the paper states ("move
//!   `min(m_s, d(P_{t-1}, A_t)/D)` towards `A_t`") is precisely
//!   [`crate::mtc::MoveToCenter`] specialized to `r = 1 ≤ D`, so the same
//!   implementation covers this variant.

use crate::model::{Instance, Step};
use msp_geometry::Point;

/// A validated speed-limited agent trajectory `A_1 … A_T` with implicit
/// start `A_0`.
#[derive(Clone, Debug)]
pub struct AgentWalk<const N: usize> {
    start: Point<N>,
    positions: Vec<Point<N>>,
    max_speed: f64,
}

impl<const N: usize> AgentWalk<N> {
    /// Wraps a trajectory, asserting the per-step speed limit.
    ///
    /// # Panics
    /// Panics when any displacement (including `start → positions[0]`)
    /// exceeds `max_speed` beyond tolerance, or on non-finite input.
    pub fn new(start: Point<N>, positions: Vec<Point<N>>, max_speed: f64) -> Self {
        assert!(
            max_speed >= 0.0 && max_speed.is_finite(),
            "agent speed must be finite and non-negative"
        );
        let mut prev = start;
        for (t, p) in positions.iter().enumerate() {
            assert!(p.is_finite(), "agent position {t} not finite");
            let d = prev.distance(p);
            assert!(
                d <= max_speed + 1e-9,
                "agent moved {d} > m_a = {max_speed} at step {t}"
            );
            prev = *p;
        }
        AgentWalk {
            start,
            positions,
            max_speed,
        }
    }

    /// Builds a walk by iterating a kinematics function
    /// `f(t, previous) → next`, clamping each step to the speed limit so
    /// generators cannot accidentally violate the model.
    pub fn from_fn(
        start: Point<N>,
        horizon: usize,
        max_speed: f64,
        mut f: impl FnMut(usize, &Point<N>) -> Point<N>,
    ) -> Self {
        let mut positions = Vec::with_capacity(horizon);
        let mut prev = start;
        for t in 0..horizon {
            let proposed = f(t, &prev);
            let next = msp_geometry::step_towards(&prev, &proposed, max_speed);
            positions.push(next);
            prev = next;
        }
        AgentWalk {
            start,
            positions,
            max_speed,
        }
    }

    /// The common origin `A_0`.
    pub fn start(&self) -> Point<N> {
        self.start
    }

    /// The revealed positions `A_1 … A_T`.
    pub fn positions(&self) -> &[Point<N>] {
        &self.positions
    }

    /// Horizon `T`.
    pub fn horizon(&self) -> usize {
        self.positions.len()
    }

    /// The speed limit `m_a` the walk satisfies.
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }
}

/// A complete Moving-Client instance.
#[derive(Clone, Debug)]
pub struct MovingClientInstance<const N: usize> {
    /// Movement cost weight `D ≥ 1`.
    pub d: f64,
    /// Server speed limit `m_s`.
    pub server_speed: f64,
    /// The agent's walk (speed `m_a` is a property of the walk).
    pub agent: AgentWalk<N>,
}

impl<const N: usize> MovingClientInstance<N> {
    /// Builds the instance; the server starts at the agent's origin, as in
    /// the paper (`A_0 = P_0`).
    pub fn new(d: f64, server_speed: f64, agent: AgentWalk<N>) -> Self {
        assert!(d >= 1.0, "D must be ≥ 1");
        assert!(
            server_speed > 0.0 && server_speed.is_finite(),
            "server speed must be positive"
        );
        MovingClientInstance {
            d,
            server_speed,
            agent,
        }
    }

    /// Ratio `m_a / m_s`; Theorem 8 applies when it exceeds 1, Theorem 10
    /// when it is at most 1.
    pub fn speed_ratio(&self) -> f64 {
        self.agent.max_speed() / self.server_speed
    }

    /// Lowers the variant to the base model: one request per step at the
    /// agent's position, Move-First pricing, movement limit `m_s`. Every
    /// algorithm, solver and cost tool of the base model then applies
    /// unchanged.
    pub fn to_instance(&self) -> Instance<N> {
        let steps = self
            .agent
            .positions()
            .iter()
            .map(|a| Step::single(*a))
            .collect();
        Instance::new(self.d, self.server_speed, self.agent.start(), steps)
    }
}

/// The multi-agent extension of the Moving-Client variant.
///
/// Section 5 notes that "our results can be modified to also work for
/// multiple agents by similar arguments as in the original problem": `k`
/// speed-limited agents issue one request each per round, so the lowering
/// produces `r = k` requests per step and Theorem 4's machinery applies
/// with `R_min = R_max = k`. When every agent is at most as fast as the
/// server, the MtC chase remains O(1)-competitive (experiment E11).
#[derive(Clone, Debug)]
pub struct MultiAgentInstance<const N: usize> {
    /// Movement cost weight `D ≥ 1`.
    pub d: f64,
    /// Server speed limit `m_s`.
    pub server_speed: f64,
    /// The agents' walks; all must share the server's start and horizon.
    pub agents: Vec<AgentWalk<N>>,
}

impl<const N: usize> MultiAgentInstance<N> {
    /// Builds the instance.
    ///
    /// # Panics
    /// Panics when agents disagree on horizon or start, or the list is
    /// empty — the model needs a common round structure.
    pub fn new(d: f64, server_speed: f64, agents: Vec<AgentWalk<N>>) -> Self {
        assert!(d >= 1.0, "D must be ≥ 1");
        assert!(
            server_speed > 0.0 && server_speed.is_finite(),
            "server speed must be positive"
        );
        assert!(!agents.is_empty(), "need at least one agent");
        let horizon = agents[0].horizon();
        let start = agents[0].start();
        for (i, a) in agents.iter().enumerate() {
            assert_eq!(a.horizon(), horizon, "agent {i} horizon mismatch");
            assert!(
                a.start().distance(&start) <= 1e-9,
                "agent {i} start mismatch"
            );
        }
        MultiAgentInstance {
            d,
            server_speed,
            agents,
        }
    }

    /// Number of agents `k` (= requests per round after lowering).
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// The fastest agent's speed; Theorem 10's regime is
    /// `max_a m_a ≤ m_s`.
    pub fn max_agent_speed(&self) -> f64 {
        self.agents
            .iter()
            .map(AgentWalk::max_speed)
            .fold(0.0, f64::max)
    }

    /// Lowers to the base model: step `t` carries one request per agent at
    /// its position `A^{(i)}_t`.
    pub fn to_instance(&self) -> Instance<N> {
        let horizon = self.agents[0].horizon();
        let steps = (0..horizon)
            .map(|t| Step::new(self.agents.iter().map(|a| a.positions()[t]).collect()))
            .collect();
        Instance::new(self.d, self.server_speed, self.agents[0].start(), steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ServingOrder;
    use crate::mtc::MoveToCenter;
    use crate::simulator::run;
    use msp_geometry::P2;

    fn straight_walk(t: usize, speed: f64) -> AgentWalk<2> {
        AgentWalk::from_fn(P2::origin(), t, speed, |_, prev| *prev + P2::xy(10.0, 0.0))
    }

    #[test]
    fn from_fn_clamps_to_speed() {
        let w = straight_walk(5, 0.5);
        assert_eq!(w.horizon(), 5);
        let mut prev = w.start();
        for p in w.positions() {
            assert!(prev.distance(p) <= 0.5 + 1e-12);
            prev = *p;
        }
        assert!((w.positions()[4].distance(&P2::origin()) - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "agent moved")]
    fn validation_rejects_speeding_agent() {
        let _ = AgentWalk::new(P2::origin(), vec![P2::xy(5.0, 0.0)], 1.0);
    }

    #[test]
    fn validation_accepts_legal_walk() {
        let w = AgentWalk::new(P2::origin(), vec![P2::xy(1.0, 0.0), P2::xy(1.0, 1.0)], 1.0);
        assert_eq!(w.horizon(), 2);
    }

    #[test]
    fn lowering_produces_single_request_steps() {
        let mc = MovingClientInstance::new(2.0, 1.0, straight_walk(6, 0.8));
        let inst = mc.to_instance();
        assert_eq!(inst.horizon(), 6);
        assert!(inst.has_fixed_request_count(1));
        assert_eq!(inst.max_move, 1.0);
        assert_eq!(inst.d, 2.0);
    }

    #[test]
    fn speed_ratio_classifies_regimes() {
        let slow_agent = MovingClientInstance::new(1.0, 1.0, straight_walk(3, 0.5));
        assert!(slow_agent.speed_ratio() <= 1.0);
        let fast_agent = MovingClientInstance::new(1.0, 1.0, straight_walk(3, 1.5));
        assert!(fast_agent.speed_ratio() > 1.0);
    }

    #[test]
    fn mtc_step_matches_paper_rule_for_single_request() {
        // Paper (Sec. 5): move min(m_s, d(P,A_t)/D) towards A_t. With the
        // agent 4 away, D = 2, m_s = 1 → step 1; with the agent 1 away →
        // step 0.5.
        let mc = MovingClientInstance::new(2.0, 1.0, straight_walk(1, 4.0));
        let inst = mc.to_instance();
        let mut alg = MoveToCenter::new();
        let res = run(&inst, &mut alg, 0.0, ServingOrder::MoveFirst);
        assert!((res.positions[1].distance(&res.positions[0]) - 1.0).abs() < 1e-9);

        let mc2 = MovingClientInstance::new(2.0, 1.0, straight_walk(1, 1.0));
        let res2 = run(&mc2.to_instance(), &mut alg, 0.0, ServingOrder::MoveFirst);
        assert!(
            (res2.positions[1].distance(&res2.positions[0]) - 0.5).abs() < 1e-9,
            "moved {}",
            res2.positions[1].distance(&res2.positions[0])
        );
    }

    #[test]
    fn multi_agent_lowering_has_one_request_per_agent() {
        let walks = vec![
            straight_walk(5, 0.5),
            AgentWalk::from_fn(P2::origin(), 5, 0.5, |_, prev| *prev + P2::xy(0.0, 10.0)),
            AgentWalk::from_fn(P2::origin(), 5, 0.3, |_, prev| *prev - P2::xy(10.0, 0.0)),
        ];
        let multi = MultiAgentInstance::new(2.0, 1.0, walks);
        assert_eq!(multi.agent_count(), 3);
        assert!((multi.max_agent_speed() - 0.5).abs() < 1e-12);
        let inst = multi.to_instance();
        assert!(inst.has_fixed_request_count(3));
        assert_eq!(inst.horizon(), 5);
        // Step 0 requests are the three agents' first positions.
        assert_eq!(inst.steps[0].requests[0], P2::xy(0.5, 0.0));
        assert_eq!(inst.steps[0].requests[1], P2::xy(0.0, 0.5));
        assert_eq!(inst.steps[0].requests[2], P2::xy(-0.3, 0.0));
    }

    #[test]
    #[should_panic(expected = "horizon mismatch")]
    fn multi_agent_rejects_horizon_mismatch() {
        let walks = vec![straight_walk(5, 0.5), straight_walk(6, 0.5)];
        let _ = MultiAgentInstance::new(1.0, 1.0, walks);
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn multi_agent_rejects_empty_list() {
        let _ = MultiAgentInstance::<2>::new(1.0, 1.0, vec![]);
    }

    #[test]
    fn mtc_tracks_a_herd_of_equal_speed_agents() {
        // Three agents moving together (a convoy): MtC should lock onto
        // the convoy and stay within a bounded distance of its median.
        let mk = |offset: f64| {
            AgentWalk::from_fn(P2::origin(), 150, 1.0, move |t, _| {
                P2::xy(t as f64 + 1.0, offset)
            })
        };
        let multi = MultiAgentInstance::new(2.0, 1.0, vec![mk(-0.5), mk(0.0), mk(0.5)]);
        let inst = multi.to_instance();
        let mut alg = MoveToCenter::new();
        let res = run(&inst, &mut alg, 0.0, ServingOrder::MoveFirst);
        // r = 3 > D = 2: MtC chases at full pull; the convoy moves at the
        // server's own speed, so the gap to the convoy median stays
        // bounded by its initial slack.
        let last = res.positions.last().unwrap();
        let convoy_median = P2::xy(150.0, 0.0);
        assert!(
            last.distance(&convoy_median) <= 2.0 * 2.0 + 1.0,
            "lost the convoy: {last:?}"
        );
    }

    #[test]
    fn equal_speed_chase_stays_within_constant_distance() {
        // Theorem 10 intuition: with m_s = m_a the MtC server maintains a
        // distance of at most D·m to the agent once locked on.
        let ms = 1.0;
        let d = 2.0;
        let walk = straight_walk(200, ms);
        let mc = MovingClientInstance::new(d, ms, walk);
        let inst = mc.to_instance();
        let mut alg = MoveToCenter::new();
        let res = run(&inst, &mut alg, 0.0, ServingOrder::MoveFirst);
        for (t, a) in mc.agent.positions().iter().enumerate() {
            let gap = res.positions[t + 1].distance(a);
            assert!(gap <= d * ms + 1e-6, "gap {gap} exceeded D·m at step {t}");
        }
    }
}
