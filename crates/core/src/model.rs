//! Problem instances: the input to both online algorithms and offline
//! solvers.
//!
//! An [`Instance`] fixes the model parameters of Section 2 — the movement
//! weight `D ≥ 1`, the per-step movement limit `m`, the common start
//! position `P_0` — and the full request sequence: one [`Step`] per time
//! step carrying the (finite, possibly empty) multiset of request points.

use msp_geometry::Point;

/// The requests of a single time step.
#[derive(Clone, Debug, PartialEq)]
pub struct Step<const N: usize> {
    /// Positions `v_{t,1}, …, v_{t,r_t}` of the clients requesting data in
    /// this step. May be empty (a silent step) — the paper allows an
    /// arbitrary finite number of requests per step.
    pub requests: Vec<Point<N>>,
}

impl<const N: usize> Step<N> {
    /// Step with the given request points.
    pub fn new(requests: Vec<Point<N>>) -> Self {
        Step { requests }
    }

    /// Step with a single request — the common case in the lower-bound
    /// constructions and the Moving-Client variant.
    pub fn single(v: Point<N>) -> Self {
        Step { requests: vec![v] }
    }

    /// Step with `r` co-located requests at `v` (the adversaries issue
    /// request batches on one point).
    pub fn repeated(v: Point<N>, r: usize) -> Self {
        Step {
            requests: vec![v; r],
        }
    }

    /// Number of requests `r_t`.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the step carries no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// The model parameters of an instance *without* its request sequence —
/// what a streaming consumer needs up front when the steps arrive one at a
/// time (from a generator, a trace file, or a network feed) and the
/// horizon is unknown or unbounded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamParams<const N: usize> {
    /// Movement cost weight `D ≥ 1`.
    pub d: f64,
    /// Per-step movement limit `m > 0`.
    pub max_move: f64,
    /// Common start position `P_0`.
    pub start: Point<N>,
}

impl<const N: usize> StreamParams<N> {
    /// Builds stream parameters, validating the model constraints.
    ///
    /// # Panics
    /// Panics on invalid parameters, mirroring [`Instance::new`].
    pub fn new(d: f64, max_move: f64, start: Point<N>) -> Self {
        assert!(d >= 1.0 && d.is_finite(), "D must be ≥ 1, got {d}");
        assert!(
            max_move > 0.0 && max_move.is_finite(),
            "m must be positive, got {max_move}"
        );
        assert!(start.is_finite(), "start position must be finite");
        StreamParams { d, max_move, start }
    }

    /// Materializes an [`Instance`] from these parameters and a collected
    /// step sequence.
    pub fn into_instance(self, steps: Vec<Step<N>>) -> Instance<N> {
        Instance::new(self.d, self.max_move, self.start, steps)
    }
}

/// A complete instance of the Mobile Server Problem.
#[derive(Clone, Debug)]
pub struct Instance<const N: usize> {
    /// Movement cost weight `D ≥ 1` (the "page size" of page migration).
    pub d: f64,
    /// Maximum distance `m` the (offline) server may move per step. Online
    /// algorithms may be granted `(1+δ)m` via resource augmentation — that
    /// is a property of the *run*, not of the instance.
    pub max_move: f64,
    /// Common start position `P_0` of server and adversary.
    pub start: Point<N>,
    /// The request sequence; `steps.len()` is the horizon `T`.
    pub steps: Vec<Step<N>>,
}

impl<const N: usize> Instance<N> {
    /// Builds an instance, validating the model constraints (`D ≥ 1`,
    /// `m > 0`, finite coordinates everywhere).
    ///
    /// # Panics
    /// Panics on invalid parameters; constructing an ill-formed instance is
    /// a programming error, not a runtime condition.
    pub fn new(d: f64, max_move: f64, start: Point<N>, steps: Vec<Step<N>>) -> Self {
        assert!(d >= 1.0 && d.is_finite(), "D must be ≥ 1, got {d}");
        assert!(
            max_move > 0.0 && max_move.is_finite(),
            "m must be positive, got {max_move}"
        );
        assert!(start.is_finite(), "start position must be finite");
        for (t, s) in steps.iter().enumerate() {
            for v in &s.requests {
                assert!(v.is_finite(), "request at step {t} not finite");
            }
        }
        Instance {
            d,
            max_move,
            start,
            steps,
        }
    }

    /// Horizon `T` — the number of time steps.
    pub fn horizon(&self) -> usize {
        self.steps.len()
    }

    /// The instance's model parameters without the request sequence.
    pub fn params(&self) -> StreamParams<N> {
        StreamParams {
            d: self.d,
            max_move: self.max_move,
            start: self.start,
        }
    }

    /// Total number of requests across all steps.
    pub fn total_requests(&self) -> usize {
        self.steps.iter().map(Step::len).sum()
    }

    /// Minimum and maximum per-step request counts `(R_min, R_max)` over
    /// the *non-silent* steps; `(0, 0)` when every step is empty. These are
    /// the quantities appearing in Theorems 2 and 4.
    pub fn request_bounds(&self) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for s in &self.steps {
            if s.is_empty() {
                continue;
            }
            lo = lo.min(s.len());
            hi = hi.max(s.len());
        }
        if hi == 0 {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// True when every step has exactly `r` requests — the fixed-`r`
    /// setting of the main analysis (Sections 4.1–4.2).
    pub fn has_fixed_request_count(&self, r: usize) -> bool {
        self.steps.iter().all(|s| s.len() == r)
    }

    /// Iterator over `(t, requests)` pairs.
    pub fn iter_steps(&self) -> impl Iterator<Item = (usize, &[Point<N>])> {
        self.steps
            .iter()
            .enumerate()
            .map(|(t, s)| (t, s.requests.as_slice()))
    }

    /// Restriction of the instance to its first `t` steps (prefix
    /// instances are used by tests cross-validating the offline solvers).
    pub fn prefix(&self, t: usize) -> Instance<N> {
        Instance {
            d: self.d,
            max_move: self.max_move,
            start: self.start,
            steps: self.steps[..t.min(self.steps.len())].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_geometry::P2;

    fn tiny() -> Instance<2> {
        Instance::new(
            2.0,
            1.0,
            P2::origin(),
            vec![
                Step::single(P2::xy(1.0, 0.0)),
                Step::new(vec![]),
                Step::repeated(P2::xy(0.0, 2.0), 3),
            ],
        )
    }

    #[test]
    fn horizon_and_counts() {
        let inst = tiny();
        assert_eq!(inst.horizon(), 3);
        assert_eq!(inst.total_requests(), 4);
    }

    #[test]
    fn request_bounds_skip_silent_steps() {
        let inst = tiny();
        assert_eq!(inst.request_bounds(), (1, 3));
    }

    #[test]
    fn request_bounds_all_silent() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![Step::new(vec![]); 4]);
        assert_eq!(inst.request_bounds(), (0, 0));
    }

    #[test]
    fn fixed_request_count_detection() {
        let inst = Instance::new(
            1.0,
            1.0,
            P2::origin(),
            vec![
                Step::repeated(P2::xy(1.0, 0.0), 2),
                Step::repeated(P2::xy(2.0, 0.0), 2),
            ],
        );
        assert!(inst.has_fixed_request_count(2));
        assert!(!inst.has_fixed_request_count(1));
    }

    #[test]
    fn prefix_truncates() {
        let inst = tiny();
        let p = inst.prefix(2);
        assert_eq!(p.horizon(), 2);
        assert_eq!(p.steps[0], inst.steps[0]);
        // Prefix longer than horizon is the full instance.
        assert_eq!(inst.prefix(10).horizon(), 3);
    }

    #[test]
    #[should_panic(expected = "D must be ≥ 1")]
    fn rejects_small_d() {
        let _ = Instance::new(0.5, 1.0, P2::origin(), vec![]);
    }

    #[test]
    #[should_panic(expected = "m must be positive")]
    fn rejects_nonpositive_move() {
        let _ = Instance::new(1.0, 0.0, P2::origin(), vec![]);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn rejects_nan_request() {
        let _ = Instance::new(
            1.0,
            1.0,
            P2::origin(),
            vec![Step::single(P2::xy(f64::NAN, 0.0))],
        );
    }

    #[test]
    fn params_round_trip_through_instance() {
        let inst = tiny();
        let p = inst.params();
        assert_eq!(p, StreamParams::new(inst.d, inst.max_move, inst.start));
        let again = p.into_instance(inst.steps.clone());
        assert_eq!(again.d, inst.d);
        assert_eq!(again.max_move, inst.max_move);
        assert_eq!(again.start, inst.start);
        assert_eq!(again.horizon(), inst.horizon());
    }

    #[test]
    #[should_panic(expected = "D must be ≥ 1")]
    fn stream_params_reject_small_d() {
        let _ = StreamParams::<2>::new(0.5, 1.0, P2::origin());
    }

    #[test]
    fn repeated_step_duplicates_point() {
        let s = Step::repeated(P2::xy(1.0, 1.0), 4);
        assert_eq!(s.len(), 4);
        assert!(s.requests.iter().all(|v| *v == P2::xy(1.0, 1.0)));
    }
}
