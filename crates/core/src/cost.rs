//! Cost accounting for server trajectories.
//!
//! Section 2 of the paper defines the cost of an algorithm as
//!
//! ```text
//! C = Σ_t ( D·d(P_t, P_{t+1}) + Σ_i d(P_{t+1}, v_{t,i}) )      (Move-First)
//! C = Σ_t ( Σ_i d(P_t, v_{t,i}) + D·d(P_t, P_{t+1}) )          (Answer-First)
//! ```
//!
//! The only difference is *which* endpoint of the move serves the requests;
//! Theorem 3 shows this detail changes the achievable competitive ratio
//! from `O(1/δ^{3/2})` to `Θ(r/D)`-ish, so the serving order is explicit
//! everywhere in this crate.

use crate::model::Instance;
use msp_geometry::Point;

/// Which endpoint of a step's move pays the service cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServingOrder {
    /// The paper's default: the server moves upon seeing the requests and
    /// serves from its *new* position `P_{t+1}`.
    MoveFirst,
    /// Section 2's variant (analyzed in Theorems 3 and 7): requests are
    /// served from the *old* position `P_t`, then the server moves.
    AnswerFirst,
}

impl ServingOrder {
    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            ServingOrder::MoveFirst => "move-first",
            ServingOrder::AnswerFirst => "answer-first",
        }
    }
}

/// Cost incurred in a single time step, split by source.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepCost {
    /// `D · d(P_t, P_{t+1})` — weighted movement.
    pub movement: f64,
    /// `Σ_i d(P_serve, v_{t,i})` — request service.
    pub service: f64,
}

impl StepCost {
    /// Movement plus service.
    pub fn total(&self) -> f64 {
        self.movement + self.service
    }
}

/// Aggregated cost of a full trajectory with its per-step trace.
#[derive(Clone, Debug, Default)]
pub struct CostBreakdown {
    /// Total weighted movement cost.
    pub movement: f64,
    /// Total service cost.
    pub service: f64,
    /// Per-step costs, `per_step.len() == T`.
    pub per_step: Vec<StepCost>,
}

impl CostBreakdown {
    /// Total cost `C_Alg` of the trajectory.
    pub fn total(&self) -> f64 {
        self.movement + self.service
    }
}

/// Service cost of answering `requests` from position `p`.
///
/// Routed through the chunked distance kernel
/// ([`msp_geometry::soa::sum_distances_points`]): squared distances are
/// computed a block at a time so the `sqrt`s vectorize, with four
/// independent partial sums. Deterministic, but the rounding association
/// differs from the plain loop — [`service_cost_naive`] is the scalar
/// oracle parity tests pin against.
#[inline]
pub fn service_cost<const N: usize>(p: &Point<N>, requests: &[Point<N>]) -> f64 {
    msp_geometry::soa::sum_distances_points(requests, p)
}

/// The seed's scalar service-cost loop, kept verbatim as the parity
/// oracle and benchmark baseline for the chunked [`service_cost`].
#[inline]
pub fn service_cost_naive<const N: usize>(p: &Point<N>, requests: &[Point<N>]) -> f64 {
    requests.iter().map(|v| v.distance(p)).sum()
}

/// Evaluates the cost of an explicit trajectory on an instance.
///
/// `positions` must hold `T + 1` points with `positions[0] == start`
/// (within tolerance); `positions[t+1]` is the server position after the
/// move of step `t`. This is how offline solutions and adversary
/// certificates are priced with *exactly* the same code path as online
/// runs.
///
/// # Panics
/// Panics when the trajectory length does not match the horizon or the
/// start position disagrees with the instance.
pub fn evaluate_trajectory<const N: usize>(
    instance: &Instance<N>,
    positions: &[Point<N>],
    order: ServingOrder,
) -> CostBreakdown {
    assert_eq!(
        positions.len(),
        instance.horizon() + 1,
        "trajectory must have T+1 positions"
    );
    assert!(
        positions[0].distance(&instance.start) <= 1e-9,
        "trajectory must begin at the instance start"
    );
    let mut out = CostBreakdown {
        per_step: Vec::with_capacity(instance.horizon()),
        ..Default::default()
    };
    for (t, step) in instance.steps.iter().enumerate() {
        let from = &positions[t];
        let to = &positions[t + 1];
        let movement = instance.d * from.distance(to);
        let serve_from = match order {
            ServingOrder::MoveFirst => to,
            ServingOrder::AnswerFirst => from,
        };
        let service = service_cost(serve_from, &step.requests);
        out.movement += movement;
        out.service += service;
        out.per_step.push(StepCost { movement, service });
    }
    out
}

/// Checks that a trajectory respects the movement limit `max_move` in every
/// step, within absolute tolerance `tol`. Returns the index of the first
/// violating step, or `None` when feasible. Used to certify offline
/// solutions and to enforce that resource augmentation was applied to the
/// intended side only.
pub fn first_move_violation<const N: usize>(
    positions: &[Point<N>],
    max_move: f64,
    tol: f64,
) -> Option<usize> {
    positions
        .windows(2)
        .position(|w| w[0].distance(&w[1]) > max_move + tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Step;
    use msp_geometry::P2;

    fn inst() -> Instance<2> {
        Instance::new(
            3.0,
            1.0,
            P2::origin(),
            vec![
                Step::single(P2::xy(2.0, 0.0)),
                Step::repeated(P2::xy(2.0, 0.0), 2),
            ],
        )
    }

    #[test]
    fn move_first_serves_from_new_position() {
        let i = inst();
        let traj = [P2::origin(), P2::xy(1.0, 0.0), P2::xy(2.0, 0.0)];
        let c = evaluate_trajectory(&i, &traj, ServingOrder::MoveFirst);
        // Step 0: move 1 (·D=3) + serve |2-1| = 1. Step 1: move 1 (·3) + 2·0.
        assert!((c.per_step[0].movement - 3.0).abs() < 1e-12);
        assert!((c.per_step[0].service - 1.0).abs() < 1e-12);
        assert!((c.per_step[1].movement - 3.0).abs() < 1e-12);
        assert!((c.per_step[1].service - 0.0).abs() < 1e-12);
        assert!((c.total() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn answer_first_serves_from_old_position() {
        let i = inst();
        let traj = [P2::origin(), P2::xy(1.0, 0.0), P2::xy(2.0, 0.0)];
        let c = evaluate_trajectory(&i, &traj, ServingOrder::AnswerFirst);
        // Step 0: serve from origin: 2, move 3. Step 1: serve 2·|2-1|=2, move 3.
        assert!((c.per_step[0].service - 2.0).abs() < 1e-12);
        assert!((c.per_step[1].service - 2.0).abs() < 1e-12);
        assert!((c.total() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn answer_first_never_cheaper_on_same_trajectory_moving_towards_requests() {
        // Moving towards the only request: serving from the new position is
        // at least as cheap, so AnswerFirst ≥ MoveFirst here.
        let i = inst();
        let traj = [P2::origin(), P2::xy(1.0, 0.0), P2::xy(2.0, 0.0)];
        let mf = evaluate_trajectory(&i, &traj, ServingOrder::MoveFirst).total();
        let af = evaluate_trajectory(&i, &traj, ServingOrder::AnswerFirst).total();
        assert!(af >= mf);
    }

    #[test]
    fn stationary_trajectory_costs_only_service() {
        let i = inst();
        let traj = [P2::origin(); 3];
        let c = evaluate_trajectory(&i, &traj, ServingOrder::MoveFirst);
        assert_eq!(c.movement, 0.0);
        assert!((c.service - (2.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_match_total() {
        let i = inst();
        let traj = [P2::origin(), P2::xy(0.5, 0.5), P2::xy(1.0, 0.0)];
        let c = evaluate_trajectory(&i, &traj, ServingOrder::MoveFirst);
        let per_step_total: f64 = c.per_step.iter().map(StepCost::total).sum();
        assert!((per_step_total - c.total()).abs() < 1e-12);
    }

    #[test]
    fn feasibility_check_flags_violation() {
        let traj = [P2::origin(), P2::xy(0.5, 0.0), P2::xy(3.0, 0.0)];
        assert_eq!(first_move_violation(&traj, 1.0, 1e-9), Some(1));
        let ok = [P2::origin(), P2::xy(1.0, 0.0), P2::xy(2.0, 0.0)];
        assert_eq!(first_move_violation(&ok, 1.0, 1e-9), None);
    }

    #[test]
    #[should_panic(expected = "T+1 positions")]
    fn wrong_length_trajectory_panics() {
        let i = inst();
        let traj = [P2::origin(), P2::xy(1.0, 0.0)];
        let _ = evaluate_trajectory(&i, &traj, ServingOrder::MoveFirst);
    }

    #[test]
    #[should_panic(expected = "begin at the instance start")]
    fn wrong_start_panics() {
        let i = inst();
        let traj = [P2::xy(5.0, 5.0), P2::xy(5.0, 5.0), P2::xy(5.0, 5.0)];
        let _ = evaluate_trajectory(&i, &traj, ServingOrder::MoveFirst);
    }

    #[test]
    fn service_cost_sums_distances() {
        let reqs = [P2::xy(1.0, 0.0), P2::xy(0.0, 1.0), P2::xy(-1.0, 0.0)];
        assert!((service_cost(&P2::origin(), &reqs) - 3.0).abs() < 1e-12);
        assert_eq!(service_cost(&P2::origin(), &[]), 0.0);
    }

    #[test]
    fn serving_order_labels() {
        assert_eq!(ServingOrder::MoveFirst.label(), "move-first");
        assert_eq!(ServingOrder::AnswerFirst.label(), "answer-first");
    }
}
