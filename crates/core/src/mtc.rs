//! The Move-to-Center algorithm (Section 4 of the paper).
//!
//! > Assume the algorithm has its server located at a point `P_Alg` and
//! > receives requests `v_1, …, v_r`. Let `c` be the point minimizing
//! > `Σ_i d(c, v_i)`. If `c` is not unique, pick the one minimizing
//! > `d(P_Alg, c)`. MtC moves the server towards `c` for a distance of
//! > `min{1, r/D}·d(P_Alg, c)` if this distance is less than `(1+δ)m`.
//! > Otherwise it moves the server a distance of `(1+δ)m` towards `c`.
//!
//! Theorem 4 proves MtC is `O((1/δ)·R_max/R_min)`-competitive on the line
//! and `O((1/δ^{3/2})·R_max/R_min)`-competitive in the plane; Theorem 7
//! extends it to the Answer-First variant and Theorem 10 shows the same
//! rule (with `r = 1 ≤ D`, i.e. step `d(P, A_t)/D`) is `O(1)`-competitive
//! in the Moving-Client variant without augmentation.
//!
//! **Performance:** the struct is const-generic over the dimension so it
//! can own a [`MedianSolver`] — a warm-starting, allocation-free
//! geometric-median solver. Successive request sets drift slowly, so
//! seeding each step's Weiszfeld iteration from the previous center
//! collapses the per-step iteration count; [`MoveToCenter::median_telemetry`]
//! exposes the counters. The warm state is cleared on every
//! [`OnlineAlgorithm::reset`], so repeated runs stay deterministic.

use crate::algorithm::{
    decode_point, encode_point, AlgContext, OnlineAlgorithm, WarmStateCodec, WarmStateError,
};
use msp_analysis::obs;
use msp_geometry::median::{
    centroid, weighted_center, MedianOptions, MedianSolver, MedianTelemetry,
};
use msp_geometry::{step_towards, Point};

/// Which center of the request set MtC targets. The paper uses the
/// 1-median; the centroid is provided for the A2 ablation (it minimizes
/// squared distances instead and loses the `4α+1` reduction of Lemma 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CenterTarget {
    /// The paper's choice: minimizer of `Σ_i d(c, v_i)`, ties broken
    /// towards the server.
    GeometricMedian,
    /// Ablation: the arithmetic mean of the requests.
    Centroid,
}

/// The paper's deterministic online algorithm.
#[derive(Clone, Debug)]
pub struct MoveToCenter<const N: usize> {
    /// Center of the request multiset to head towards.
    pub center: CenterTarget,
    /// Convergence options for the geometric-median computation.
    pub median_opts: MedianOptions,
    solver: MedianSolver<N>,
}

impl<const N: usize> MoveToCenter<N> {
    /// Paper-faithful MtC (geometric-median target, default solver
    /// tolerances).
    pub fn new() -> Self {
        Self::with_center(CenterTarget::GeometricMedian)
    }

    /// MtC with an alternative center target (ablation A2).
    pub fn with_center(center: CenterTarget) -> Self {
        let median_opts = MedianOptions::default();
        MoveToCenter {
            center,
            median_opts,
            solver: MedianSolver::new(median_opts),
        }
    }

    /// The center point `c` for a request set as seen from `current`.
    ///
    /// Stateless cold-start computation, for external callers (fleet
    /// partitioning, experiment replays) that probe centers out of
    /// sequence; the simulation hot path goes through the internal
    /// warm-started solver instead.
    pub fn center_of(&self, requests: &[Point<N>], current: &Point<N>) -> Point<N> {
        match self.center {
            CenterTarget::GeometricMedian => weighted_center(requests, current, self.median_opts),
            CenterTarget::Centroid => centroid(requests),
        }
    }

    /// Iteration counters of the internal warm-started median solver.
    pub fn median_telemetry(&self) -> MedianTelemetry {
        self.solver.telemetry
    }
}

/// The observability registry's aggregate view of median-solver activity,
/// as a [`MedianTelemetry`] — the same struct
/// [`MoveToCenter::median_telemetry`] returns for one solver instance,
/// deduplicated at the process level: every `decide` publishes its solver
/// deltas into `msp_analysis::obs` (while metrics are enabled), so the
/// registry totals are the sum over all solver instances.
/// `last_iterations` is inherently per-solver and reads as 0 here.
pub fn median_telemetry_view(snapshot: &obs::MetricsSnapshot) -> MedianTelemetry {
    MedianTelemetry {
        solves: snapshot
            .counter(obs::Counter::MedianSolves.name())
            .unwrap_or(0),
        iterations: snapshot
            .counter(obs::Counter::MedianIterations.name())
            .unwrap_or(0),
        warm_starts: snapshot
            .counter(obs::Counter::MedianWarmStarts.name())
            .unwrap_or(0),
        last_iterations: 0,
    }
}

impl<const N: usize> Default for MoveToCenter<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> OnlineAlgorithm<N> for MoveToCenter<N> {
    fn name(&self) -> String {
        match self.center {
            CenterTarget::GeometricMedian => "mtc".into(),
            CenterTarget::Centroid => "mtc-centroid".into(),
        }
    }

    fn reset(&mut self, _ctx: &AlgContext<N>) {
        // MtC is memoryless in the model sense: each decision depends only
        // on the current position and the current requests. The solver's
        // warm-start iterate is a numerical accelerator, not algorithmic
        // state, and is cleared here so reruns are bit-identical.
        self.solver.set_options(self.median_opts);
        self.solver.reset();
    }

    fn decide(
        &mut self,
        current: &Point<N>,
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Point<N> {
        if requests.is_empty() {
            // No requests: nothing pulls the server anywhere.
            return *current;
        }
        let c = match self.center {
            CenterTarget::GeometricMedian => {
                // Keep the solver in lockstep with the public `median_opts`
                // field even when callers mutate it between decisions
                // without an intervening reset (a cheap Copy assignment).
                self.solver.set_options(self.median_opts);
                // Route the solver's telemetry deltas through the
                // observability registry (msp-geometry sits below
                // msp-analysis in the crate graph, so the bridge lives
                // here). Publishing counters never feeds back into the
                // solve: decisions are bit-equal with metrics on or off.
                let before = obs::enabled().then_some(self.solver.telemetry);
                let c = self.solver.center(requests, current);
                if let Some(before) = before {
                    let t = self.solver.telemetry;
                    obs::add(obs::Counter::MedianSolves, t.solves - before.solves);
                    obs::add(
                        obs::Counter::MedianIterations,
                        t.iterations - before.iterations,
                    );
                    obs::add(
                        obs::Counter::MedianWarmStarts,
                        t.warm_starts - before.warm_starts,
                    );
                }
                c
            }
            CenterTarget::Centroid => centroid(requests),
        };
        let r = requests.len() as f64;
        let pull = (r / ctx.d).min(1.0) * current.distance(&c);
        let step = pull.min(ctx.online_budget());
        step_towards(current, &c, step)
    }

    fn warm_hint(&mut self, neighbor: &Self) {
        // The geometric median depends on the request set, not on the
        // server position (the position only breaks ties on collinear
        // sets, which are solved exactly without iteration). A neighboring
        // δ-lane that just solved the *same step* therefore holds an
        // essentially converged starting iterate: seeding from it
        // collapses this lane's solve to a verification pass.
        if let Some(center) = neighbor.solver.warm_state() {
            self.solver.seed(center);
        }
    }
}

impl<const N: usize> WarmStateCodec for MoveToCenter<N> {
    // Layout: tag `0` (cold solver) or tag `1` followed by the warm
    // iterate as 8·N little-endian f64 bit patterns. The warm iterate is
    // the only per-run state the solver carries (scratch buffers and
    // telemetry never feed back into the numerics), so round-tripping it
    // bit-exactly makes a resumed run's decisions identical to the
    // uninterrupted run's.
    fn encode_warm_state(&self, out: &mut Vec<u8>) {
        match self.solver.warm_state() {
            None => out.push(0),
            Some(center) => {
                out.push(1);
                encode_point(&center, out);
            }
        }
    }

    fn decode_warm_state(&mut self, bytes: &[u8]) -> Result<(), WarmStateError> {
        match bytes.split_first() {
            Some((0, [])) => Ok(()),
            Some((0, _)) => Err(WarmStateError::new("trailing bytes after cold mtc tag")),
            Some((1, rest)) => {
                self.solver.seed(decode_point::<N>(rest)?);
                Ok(())
            }
            Some((tag, _)) => Err(WarmStateError::new(format!("unknown mtc tag {tag}"))),
            None => Err(WarmStateError::new("empty mtc warm-state blob")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Instance, Step, StreamParams};
    use msp_geometry::{P1, P2};

    fn ctx2(d: f64, m: f64, delta: f64) -> AlgContext<2> {
        let inst = Instance::new(d, m, P2::origin(), vec![Step::new(vec![])]);
        AlgContext::new(&inst, delta)
    }

    #[test]
    fn empty_step_stays_put() {
        let mut mtc = MoveToCenter::new();
        let ctx = ctx2(2.0, 1.0, 0.5);
        let p = P2::xy(3.0, 4.0);
        assert_eq!(mtc.decide(&p, &[], &ctx), p);
    }

    #[test]
    fn single_request_r_below_d_moves_fraction() {
        // r = 1, D = 4: pull = (1/4)·d(P, c). Request 2 away → move 0.5.
        let mut mtc = MoveToCenter::new();
        let ctx = ctx2(4.0, 10.0, 0.0);
        let p = P2::origin();
        let next = mtc.decide(&p, &[P2::xy(2.0, 0.0)], &ctx);
        assert!((next.distance(&p) - 0.5).abs() < 1e-9, "got {next:?}");
        assert!((next - P2::xy(0.5, 0.0)).norm() < 1e-9);
    }

    #[test]
    fn many_requests_move_full_distance_to_center() {
        // r = 8 > D = 2: pull = d(P, c); center within budget → land on it.
        let mut mtc = MoveToCenter::new();
        let ctx = ctx2(2.0, 10.0, 0.0);
        let reqs = vec![P2::xy(1.0, 0.0); 8];
        let next = mtc.decide(&P2::origin(), &reqs, &ctx);
        assert!(next.distance(&P2::xy(1.0, 0.0)) < 1e-9);
    }

    #[test]
    fn budget_caps_the_step() {
        // Pull would be 5, but budget (1+δ)m = 1.5·1 caps it.
        let mut mtc = MoveToCenter::new();
        let ctx = ctx2(1.0, 1.0, 0.5);
        let next = mtc.decide(&P2::origin(), &[P2::xy(5.0, 0.0)], &ctx);
        assert!((next.distance(&P2::origin()) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tie_break_uses_server_position() {
        // Two requests on the x-axis: every point between them is a center.
        // MtC must pick the one closest to the server — the projection.
        let mut mtc = MoveToCenter::new();
        let ctx = ctx2(1.0, 100.0, 0.0);
        let server = P2::xy(0.5, 2.0);
        let reqs = [P2::xy(0.0, 0.0), P2::xy(1.0, 0.0)];
        let next = mtc.decide(&server, &reqs, &ctx);
        // r=2 ≥ D=1 → move all the way to c = (0.5, 0) (closest center).
        assert!(next.distance(&P2::xy(0.5, 0.0)) < 1e-9, "got {next:?}");
    }

    #[test]
    fn tie_break_minimizes_movement_cost() {
        // Server already on a center: must not move at all.
        let mut mtc = MoveToCenter::new();
        let ctx = ctx2(1.0, 100.0, 0.0);
        let server = P2::xy(0.3, 0.0);
        let reqs = [P2::xy(0.0, 0.0), P2::xy(1.0, 0.0)];
        let next = mtc.decide(&server, &reqs, &ctx);
        assert!(next.distance(&server) < 1e-9);
    }

    #[test]
    fn centroid_variant_targets_mean() {
        let mut mtc = MoveToCenter::with_center(CenterTarget::Centroid);
        let ctx = ctx2(1.0, 100.0, 0.0);
        // Median of {0,0,10} on the line is 0; centroid is 10/3.
        let reqs = [P2::origin(), P2::origin(), P2::xy(10.0, 0.0)];
        let next = mtc.decide(&P2::xy(5.0, 0.0), &reqs, &ctx);
        assert!(
            next.distance(&P2::xy(10.0 / 3.0, 0.0)) < 1e-9,
            "got {next:?}"
        );
    }

    #[test]
    fn works_on_the_line() {
        let inst = Instance::new(2.0, 1.0, P1::origin(), vec![Step::new(vec![])]);
        let ctx = AlgContext::new(&inst, 0.0);
        let mut mtc = MoveToCenter::new();
        let next = mtc.decide(&P1::origin(), &[P1::new([4.0])], &ctx);
        // pull = (1/2)·4 = 2 > budget 1 → move 1.
        assert!((next.x() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn never_exceeds_budget_fuzz() {
        use msp_geometry::sample::SeededSampler;
        let mut s = SeededSampler::new(31);
        let mut mtc = MoveToCenter::new();
        for _ in 0..200 {
            let d = s.uniform(1.0, 8.0);
            let m = s.uniform(0.1, 2.0);
            let delta = s.uniform(0.0, 1.0);
            let inst = Instance::new(d, m, P2::origin(), vec![Step::new(vec![])]);
            let ctx = AlgContext::new(&inst, delta);
            let cur: P2 = s.point_in_cube(5.0);
            let r = s.int_inclusive(1, 6);
            let reqs: Vec<P2> = (0..r).map(|_| s.point_in_cube(5.0)).collect();
            let next = mtc.decide(&cur, &reqs, &ctx);
            assert!(next.distance(&cur) <= ctx.online_budget() + 1e-9);
        }
    }

    #[test]
    fn warm_hint_seeds_the_solver_from_a_neighbor() {
        // Two "lanes" on the same request set: after lane A decides, a
        // hint from A must let lane B solve from A's center — engaging the
        // warm-start counter and converging in a handful of iterations —
        // while deciding the same point A did (same position, same δ).
        let ctx = ctx2(4.0, 0.5, 0.2);
        let reqs = [
            P2::xy(1.0, 0.4),
            P2::xy(0.5, -0.7),
            P2::xy(1.5, 0.9),
            P2::xy(0.2, 0.3),
        ];
        let mut lane_a = MoveToCenter::<2>::new();
        lane_a.reset(&ctx);
        let decision_a = lane_a.decide(&P2::origin(), &reqs, &ctx);

        let mut lane_b = MoveToCenter::<2>::new();
        lane_b.reset(&ctx);
        lane_b.warm_hint(&lane_a);
        let decision_b = lane_b.decide(&P2::origin(), &reqs, &ctx);

        assert!(decision_b.distance(&decision_a) < 1e-9);
        let t = lane_b.median_telemetry();
        assert_eq!(t.warm_starts, 1, "hint must prime the warm start");
        assert!(
            t.last_iterations <= 4,
            "seeded solve should be a verification pass, took {}",
            t.last_iterations
        );
        // A hint from a never-used neighbor is a no-op.
        let mut lane_c = MoveToCenter::<2>::new();
        lane_c.reset(&ctx);
        let fresh = MoveToCenter::<2>::new();
        lane_c.warm_hint(&fresh);
        let _ = lane_c.decide(&P2::origin(), &reqs, &ctx);
        assert_eq!(lane_c.median_telemetry().warm_starts, 0);
    }

    #[test]
    fn decide_routes_median_telemetry_through_the_registry() {
        // The registry is process-global and sibling tests solve medians
        // concurrently, so assert growth deltas (≥), never exact counts.
        obs::enable();
        let mut mtc = MoveToCenter::<2>::new();
        let ctx = AlgContext::from_params(&StreamParams::new(4.0, 1.0, P2::origin()), 0.1);
        mtc.reset(&ctx);
        let before = median_telemetry_view(&obs::snapshot());
        let reqs = [P2::xy(1.0, 0.4), P2::xy(-0.3, 1.2), P2::xy(0.8, -0.9)];
        let _ = mtc.decide(&P2::origin(), &reqs, &ctx);
        let after = median_telemetry_view(&obs::snapshot());
        let local = mtc.median_telemetry();
        assert!(local.solves >= 1);
        assert!(
            after.solves >= before.solves + local.solves,
            "registry view must absorb this solver's activity: {before:?} -> {after:?}"
        );
        assert!(after.iterations >= before.iterations + local.iterations);
        assert_eq!(after.last_iterations, 0, "inherently per-solver");
    }

    #[test]
    fn names_distinguish_variants() {
        let a: &dyn OnlineAlgorithm<2> = &MoveToCenter::new();
        let b: &dyn OnlineAlgorithm<2> = &MoveToCenter::with_center(CenterTarget::Centroid);
        assert_eq!(a.name(), "mtc");
        assert_eq!(b.name(), "mtc-centroid");
    }

    #[test]
    fn warm_solver_threads_through_decisions() {
        // A long decision sequence on drifting requests: the internal
        // solver must record warm starts and stay in lockstep with the
        // stateless center computation.
        let mut mtc = MoveToCenter::<2>::new();
        let ctx = ctx2(4.0, 0.5, 0.2);
        mtc.reset(&ctx);
        let mut pos = P2::origin();
        for t in 0..100 {
            let s = 0.05 * t as f64;
            let reqs = [
                P2::xy(1.0 + s, 0.4),
                P2::xy(0.5 + s, -0.7),
                P2::xy(1.5 + s, 0.9),
            ];
            let cold_center = mtc.center_of(&reqs, &pos);
            let next = mtc.decide(&pos, &reqs, &ctx);
            // The decision must head towards (within 1e-9 of) the cold
            // center — warm starting is numerics, not policy.
            let pull = (3.0f64 / ctx.d).min(1.0) * pos.distance(&cold_center);
            let expect = step_towards(&pos, &cold_center, pull.min(ctx.online_budget()));
            assert!(next.distance(&expect) < 1e-9, "step {t}");
            pos = next;
        }
        let telemetry = mtc.median_telemetry();
        assert_eq!(telemetry.solves, 100);
        assert!(telemetry.warm_starts >= 99);
        // Reset clears the warm state: the next solve is cold again.
        mtc.reset(&ctx);
        let before = mtc.median_telemetry().warm_starts;
        let _ = mtc.decide(
            &P2::origin(),
            &[P2::xy(1.0, 0.2), P2::xy(0.0, 1.1), P2::xy(-1.0, 0.3)],
            &ctx,
        );
        assert_eq!(mtc.median_telemetry().warm_starts, before);
    }
}
