#![warn(missing_docs)]

//! The Mobile Server Problem — core model and algorithms.
//!
//! This crate implements the primary contribution of Feldkord & Meyer auf
//! der Heide, *The Mobile Server Problem* (SPAA 2017 / arXiv 1904.05220):
//!
//! * the **model** ([`model`]): a single mobile server holding a data page
//!   in Euclidean `N`-space; per step, `r_t` requests appear, the server
//!   moves at most `m`, paying `D·d(P_t, P_{t+1})` for movement and the sum
//!   of request distances for service;
//! * the two **serving orders** ([`cost::ServingOrder`]): Move-First (the
//!   paper's default — move knowing the requests, then serve from the new
//!   position) and Answer-First (serve first, then move);
//! * the **Move-to-Center algorithm** ([`mtc::MoveToCenter`]), the paper's
//!   deterministic online algorithm: head towards the 1-median `c` of the
//!   current requests by `min{1, r/D}·d(P, c)`, capped at the (possibly
//!   augmented) movement budget `(1+δ)m`;
//! * **baseline online algorithms** ([`baselines`]) used by the experiment
//!   suite: never-move, greedy full-speed chase, a Move-To-Min adaptation
//!   of Westbrook's page-migration algorithm, a randomized coin-flip
//!   migration, and step-rule/center ablation variants;
//! * the **simulator** ([`simulator`]) that runs any
//!   [`algorithm::OnlineAlgorithm`] over an [`model::Instance`] with strict
//!   budget enforcement and full per-step cost traces — including the
//!   batched fast path [`simulator::run_batch`], which prices many δ
//!   values under both serving orders in one pass over the steps;
//! * the **Moving-Client variant** ([`moving_client`]) of Section 5, where
//!   the single requester is itself speed-limited.
//!
//! Lower-bound adversaries live in `msp-adversary`; offline optimum solvers
//! in `msp-offline`; workload generators in `msp-workloads`.

pub mod algorithm;
pub mod baselines;
pub mod cost;
pub mod fleet;
pub mod io;
pub mod model;
pub mod moving_client;
pub mod mtc;
pub mod ratio;
pub mod simulator;

pub use algorithm::{AlgContext, BoxedAlgorithm, OnlineAlgorithm, WarmStateCodec, WarmStateError};
pub use cost::{CostBreakdown, ServingOrder, StepCost};
pub use model::{Instance, Step};
pub use mtc::MoveToCenter;
pub use ratio::competitive_ratio;
pub use simulator::{run, run_batch, RunResult};

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::algorithm::{AlgContext, OnlineAlgorithm};
    pub use crate::baselines::{FollowCenter, Lazy, MoveToMin, RandomizedCoinFlip};
    pub use crate::cost::{CostBreakdown, ServingOrder};
    pub use crate::model::{Instance, Step};
    pub use crate::moving_client::{AgentWalk, MovingClientInstance, MultiAgentInstance};
    pub use crate::mtc::MoveToCenter;
    pub use crate::ratio::competitive_ratio;
    pub use crate::simulator::{run, run_batch, RunResult};
    pub use msp_geometry::{Point, P1, P2, P3};
}
