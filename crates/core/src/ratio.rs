//! Competitive-ratio arithmetic.
//!
//! A competitive ratio is `C_Alg / C_Opt`; both sides are sums of
//! nonnegative distances, and `C_Opt` can legitimately be zero (e.g. every
//! request sits on the start position). The helpers here centralize the
//! conventions so every experiment reports ratios identically.

/// Ratio `alg / opt` with the degenerate cases pinned down:
/// both zero → 1 (the algorithm is exactly optimal);
/// `opt = 0 < alg` → `+∞` (unboundedly worse);
/// negative inputs are programming errors.
///
/// # Panics
/// Panics on negative or non-finite costs.
pub fn competitive_ratio(alg: f64, opt: f64) -> f64 {
    assert!(
        alg >= 0.0 && alg.is_finite(),
        "algorithm cost invalid: {alg}"
    );
    assert!(opt >= 0.0 && opt.is_finite(), "optimal cost invalid: {opt}");
    if opt == 0.0 {
        if alg == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        alg / opt
    }
}

/// Ratio against an *upper bound* on OPT (e.g. the adversary's explicit
/// trajectory cost). Because `opt_upper ≥ opt`, the result is a valid
/// **lower** bound on the true competitive ratio — exactly what the
/// lower-bound experiments need to report.
pub fn ratio_lower_bound(alg: f64, opt_upper: f64) -> f64 {
    competitive_ratio(alg, opt_upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ratio() {
        assert_eq!(competitive_ratio(6.0, 2.0), 3.0);
    }

    #[test]
    fn both_zero_is_one() {
        assert_eq!(competitive_ratio(0.0, 0.0), 1.0);
    }

    #[test]
    fn zero_opt_positive_alg_is_infinite() {
        assert!(competitive_ratio(1.0, 0.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn negative_cost_panics() {
        let _ = competitive_ratio(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn nan_cost_panics() {
        let _ = competitive_ratio(f64::NAN, 1.0);
    }

    #[test]
    fn lower_bound_alias_behaves_identically() {
        assert_eq!(ratio_lower_bound(10.0, 4.0), 2.5);
    }
}
