//! Baseline online algorithms.
//!
//! The paper compares against the Page Migration literature analytically;
//! the experiment suite needs those strategies as executable code. All
//! baselines respect the same movement budget as MtC (the simulator clamps
//! every proposal), so comparisons isolate the *decision rule*.
//!
//! * [`Lazy`] — never moves. Its ratio degrades linearly with the distance
//!   drift of the requests; the Theorem 1 construction drives it to
//!   `Θ(T)`-ish cost.
//! * [`FollowCenter`] — greedy chase: always moves at full budget towards
//!   the request center. Ablation A1 contrasts it with MtC's damped
//!   `min{1, r/D}` step, which is what makes the potential argument work.
//! * [`FractionalStep`] — MtC with the pull scaled by a constant `κ`
//!   (`κ = 1` recovers MtC); the other arm of ablation A1.
//! * [`MoveToMin`] — adaptation of Westbrook's Move-To-Min page-migration
//!   algorithm (7-competitive in the unrestricted model): batch the
//!   requests of the last `⌈D/r̄⌉` steps, then head for the batch's
//!   1-median. Standard page-migration solutions "require moving to a
//!   specific point after collecting a batch of requests" (Section 5) —
//!   the movement limit is why they break here, which this baseline makes
//!   measurable.
//! * [`RandomizedCoinFlip`] — adaptation of Westbrook's Coin-Flip
//!   algorithm (3-competitive unrestricted): with probability
//!   `min{1, r/(2D)}` per step, adopt the request center as the standing
//!   target; always move towards the standing target at full budget.

use crate::algorithm::{
    decode_point, encode_point, AlgContext, OnlineAlgorithm, WarmStateCodec, WarmStateError,
};
use msp_geometry::median::{weighted_center, MedianOptions};
use msp_geometry::{step_towards, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Implements [`WarmStateCodec`] for a memoryless baseline: nothing to
/// encode, and decoding accepts only the empty blob it produced.
macro_rules! stateless_codec {
    ($ty:ty, $label:literal) => {
        impl WarmStateCodec for $ty {
            fn encode_warm_state(&self, _out: &mut Vec<u8>) {}
            fn decode_warm_state(&mut self, bytes: &[u8]) -> Result<(), WarmStateError> {
                if bytes.is_empty() {
                    Ok(())
                } else {
                    Err(WarmStateError::new(concat!(
                        $label,
                        " is stateless but blob is non-empty"
                    )))
                }
            }
        }
    };
}

stateless_codec!(Lazy, "lazy");
stateless_codec!(FollowCenter, "follow-center");
stateless_codec!(FractionalStep, "fractional-step");

/// Never moves; serves every request from `P_0`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lazy;

impl<const N: usize> OnlineAlgorithm<N> for Lazy {
    fn name(&self) -> String {
        "lazy".into()
    }
    fn reset(&mut self, _ctx: &AlgContext<N>) {}
    fn decide(
        &mut self,
        current: &Point<N>,
        _requests: &[Point<N>],
        _ctx: &AlgContext<N>,
    ) -> Point<N> {
        *current
    }
}

/// Greedy chase: full movement budget towards the request center each step.
#[derive(Clone, Debug, Default)]
pub struct FollowCenter {
    opts: MedianOptions,
}

impl FollowCenter {
    /// Creates the greedy chaser with default median tolerances.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<const N: usize> OnlineAlgorithm<N> for FollowCenter {
    fn name(&self) -> String {
        "follow-center".into()
    }
    fn reset(&mut self, _ctx: &AlgContext<N>) {}
    fn decide(
        &mut self,
        current: &Point<N>,
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Point<N> {
        if requests.is_empty() {
            return *current;
        }
        let c = weighted_center(requests, current, self.opts);
        step_towards(current, &c, ctx.online_budget())
    }
}

/// MtC with the pull strength scaled by `κ`: step
/// `min{1, κ·r/D}·d(P, c)`, capped at the budget. `κ = 1` is exactly MtC;
/// ablation A1 sweeps `κ` to show the paper's damping constant matters.
#[derive(Clone, Debug)]
pub struct FractionalStep {
    /// Pull multiplier `κ > 0`.
    pub kappa: f64,
    opts: MedianOptions,
}

impl FractionalStep {
    /// Creates the variant with pull multiplier `kappa`.
    ///
    /// # Panics
    /// Panics unless `kappa` is positive and finite.
    pub fn new(kappa: f64) -> Self {
        assert!(kappa > 0.0 && kappa.is_finite(), "κ must be positive");
        FractionalStep {
            kappa,
            opts: MedianOptions::default(),
        }
    }
}

impl<const N: usize> OnlineAlgorithm<N> for FractionalStep {
    fn name(&self) -> String {
        format!("mtc-kappa-{:.2}", self.kappa)
    }
    fn reset(&mut self, _ctx: &AlgContext<N>) {}
    fn decide(
        &mut self,
        current: &Point<N>,
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Point<N> {
        if requests.is_empty() {
            return *current;
        }
        let c = weighted_center(requests, current, self.opts);
        let r = requests.len() as f64;
        let pull = (self.kappa * r / ctx.d).min(1.0) * current.distance(&c);
        step_towards(current, &c, pull.min(ctx.online_budget()))
    }
}

/// Namespace for constructing the Move-To-Min baseline in the plane; the
/// algorithm itself is the generic [`MoveToMinN`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MoveToMin;

/// Adaptation of Westbrook's deterministic Move-To-Min for dimension `N`:
/// collect requests until their count reaches `D`, re-target the batch
/// 1-median, then drain towards it at full budget.
#[derive(Clone, Debug)]
pub struct MoveToMinN<const N: usize> {
    batch: Vec<Point<N>>,
    target: Option<Point<N>>,
    opts: MedianOptions,
}

impl<const N: usize> MoveToMinN<N> {
    /// Fresh Move-To-Min with an empty batch.
    pub fn new() -> Self {
        MoveToMinN {
            batch: Vec::new(),
            target: None,
            opts: MedianOptions::default(),
        }
    }
}

impl<const N: usize> Default for MoveToMinN<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl MoveToMin {
    /// Builds the 2-D convenience wrapper (most experiments run in the
    /// plane); other dimensions use [`MoveToMinN`] directly.
    #[allow(clippy::new_ret_no_self)] // namespace type: `MoveToMin` is the
                                      // user-facing name, the state lives in the dimension-generic struct
    pub fn new() -> MoveToMinN<2> {
        MoveToMinN::new()
    }
}

impl<const N: usize> OnlineAlgorithm<N> for MoveToMinN<N> {
    fn name(&self) -> String {
        "move-to-min".into()
    }

    fn reset(&mut self, _ctx: &AlgContext<N>) {
        self.batch.clear();
        self.target = None;
    }

    fn decide(
        &mut self,
        current: &Point<N>,
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Point<N> {
        self.batch.extend_from_slice(requests);
        // Once the batch carries at least D requests (the classical
        // trigger: D requests have been served since the last migration),
        // commit to the batch median and start a new batch.
        if self.batch.len() as f64 >= ctx.d {
            self.target = Some(weighted_center(&self.batch, current, self.opts));
            self.batch.clear();
        }
        match self.target {
            Some(t) => {
                let next = step_towards(current, &t, ctx.online_budget());
                if next == t {
                    // Arrived; wait for the next batch to complete.
                    self.target = None;
                }
                next
            }
            None => *current,
        }
    }
}

impl<const N: usize> WarmStateCodec for MoveToMinN<N> {
    // Layout: target tag (`0` none, `1` + point), then the pending batch
    // as a `u32` count followed by that many points. Unlike MtC's warm
    // iterate this *is* algorithmic state — dropping it would silently
    // shift every future migration — so the codec carries it in full.
    fn encode_warm_state(&self, out: &mut Vec<u8>) {
        match self.target {
            None => out.push(0),
            Some(t) => {
                out.push(1);
                encode_point(&t, out);
            }
        }
        out.extend_from_slice(&(self.batch.len() as u32).to_le_bytes());
        for p in &self.batch {
            encode_point(p, out);
        }
    }

    fn decode_warm_state(&mut self, bytes: &[u8]) -> Result<(), WarmStateError> {
        let point_len = 8 * N;
        let (target, rest) = match bytes.split_first() {
            Some((0, rest)) => (None, rest),
            Some((1, rest)) if rest.len() >= point_len => {
                let (raw, rest) = rest.split_at(point_len);
                (Some(decode_point::<N>(raw)?), rest)
            }
            Some((1, _)) => {
                return Err(WarmStateError::new("move-to-min target truncated"));
            }
            Some((tag, _)) => {
                return Err(WarmStateError::new(format!(
                    "unknown move-to-min tag {tag}"
                )));
            }
            None => return Err(WarmStateError::new("empty move-to-min blob")),
        };
        if rest.len() < 4 {
            return Err(WarmStateError::new("move-to-min batch count truncated"));
        }
        let (raw_count, body) = rest.split_at(4);
        let count = u32::from_le_bytes(raw_count.try_into().unwrap()) as usize;
        if body.len() != count * point_len {
            return Err(WarmStateError::new(format!(
                "move-to-min batch has {} bytes, expected {}",
                body.len(),
                count * point_len
            )));
        }
        let mut batch = Vec::with_capacity(count);
        for raw in body.chunks_exact(point_len) {
            batch.push(decode_point::<N>(raw)?);
        }
        self.target = target;
        self.batch = batch;
        Ok(())
    }
}

/// Adaptation of Westbrook's randomized Coin-Flip algorithm: each step,
/// with probability `min{1, r/(2D)}`, re-target the current request
/// center; always move at full budget towards the standing target.
///
/// The RNG is re-seeded from `seed` on every [`OnlineAlgorithm::reset`], so
/// runs are reproducible and repeated runs of the same configured instance
/// coincide.
///
/// [`WarmStateCodec`] is deliberately **not** implemented here: the RNG's
/// mid-run state is not exposed, so a crash-resumed run could not replay
/// the coin flips bit-equal to the uninterrupted run. Journal support is
/// therefore compile-time restricted to the deterministic algorithms.
#[derive(Clone, Debug)]
pub struct RandomizedCoinFlip<const N: usize> {
    /// Seed applied at reset.
    pub seed: u64,
    rng: StdRng,
    target: Option<Point<N>>,
    opts: MedianOptions,
}

impl<const N: usize> RandomizedCoinFlip<N> {
    /// Coin-flip baseline with a fixed seed.
    pub fn new(seed: u64) -> Self {
        RandomizedCoinFlip {
            seed,
            rng: StdRng::seed_from_u64(seed),
            target: None,
            opts: MedianOptions::default(),
        }
    }
}

impl<const N: usize> OnlineAlgorithm<N> for RandomizedCoinFlip<N> {
    fn name(&self) -> String {
        "coin-flip".into()
    }

    fn reset(&mut self, _ctx: &AlgContext<N>) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.target = None;
    }

    fn decide(
        &mut self,
        current: &Point<N>,
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Point<N> {
        if !requests.is_empty() {
            let p = (requests.len() as f64 / (2.0 * ctx.d)).min(1.0);
            if self.rng.gen_bool(p) {
                self.target = Some(weighted_center(requests, current, self.opts));
            }
        }
        match self.target {
            Some(t) => {
                let next = step_towards(current, &t, ctx.online_budget());
                if next == t {
                    self.target = None;
                }
                next
            }
            None => *current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Instance, Step};
    use msp_geometry::P2;

    fn ctx(d: f64, m: f64, delta: f64) -> AlgContext<2> {
        let inst = Instance::new(d, m, P2::origin(), vec![Step::new(vec![])]);
        AlgContext::new(&inst, delta)
    }

    #[test]
    fn lazy_never_moves() {
        let mut alg = Lazy;
        let c = ctx(1.0, 1.0, 0.0);
        let p = P2::xy(1.0, 1.0);
        let reqs = [P2::xy(100.0, 100.0)];
        assert_eq!(OnlineAlgorithm::<2>::decide(&mut alg, &p, &reqs, &c), p);
    }

    #[test]
    fn follow_center_uses_full_budget() {
        let mut alg = FollowCenter::new();
        let c = ctx(4.0, 1.0, 0.0);
        let next = alg.decide(&P2::origin(), &[P2::xy(10.0, 0.0)], &c);
        assert!((next.distance(&P2::origin()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn follow_center_idle_without_requests() {
        let mut alg = FollowCenter::new();
        let c = ctx(4.0, 1.0, 0.0);
        let p = P2::xy(2.0, 2.0);
        assert_eq!(alg.decide(&p, &[], &c), p);
    }

    #[test]
    fn fractional_step_kappa_one_matches_mtc() {
        use crate::mtc::MoveToCenter;
        let mut frac = FractionalStep::new(1.0);
        let mut mtc = MoveToCenter::new();
        let c = ctx(4.0, 10.0, 0.3);
        let reqs = [P2::xy(2.0, 1.0), P2::xy(3.0, -1.0)];
        let cur = P2::xy(-1.0, 0.5);
        let a = frac.decide(&cur, &reqs, &c);
        let b = mtc.decide(&cur, &reqs, &c);
        assert!(a.distance(&b) < 1e-9);
    }

    #[test]
    fn fractional_step_larger_kappa_moves_farther() {
        let c = ctx(8.0, 10.0, 0.0);
        let reqs = [P2::xy(4.0, 0.0)];
        let cur = P2::origin();
        let a = FractionalStep::new(0.5).decide(&cur, &reqs, &c);
        let b = FractionalStep::new(2.0).decide(&cur, &reqs, &c);
        assert!(b.distance(&cur) > a.distance(&cur));
    }

    #[test]
    #[should_panic(expected = "κ must be positive")]
    fn fractional_step_rejects_zero_kappa() {
        let _ = FractionalStep::new(0.0);
    }

    #[test]
    fn move_to_min_waits_for_batch() {
        let mut alg = MoveToMin::new();
        let c = ctx(3.0, 1.0, 0.0);
        let mut cur = P2::origin();
        // D = 3: the first two single-request steps must not trigger a move.
        cur = alg.decide(&cur, &[P2::xy(5.0, 0.0)], &c);
        assert_eq!(cur, P2::origin());
        cur = alg.decide(&cur, &[P2::xy(5.0, 0.0)], &c);
        assert_eq!(cur, P2::origin());
        // Third request completes the batch → start moving.
        cur = alg.decide(&cur, &[P2::xy(5.0, 0.0)], &c);
        assert!((cur.distance(&P2::origin()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn move_to_min_drains_towards_target_without_new_requests() {
        let mut alg = MoveToMin::new();
        let c = ctx(1.0, 1.0, 0.0);
        let mut cur = P2::origin();
        cur = alg.decide(&cur, &[P2::xy(3.0, 0.0)], &c); // batch full at once
        cur = alg.decide(&cur, &[], &c);
        cur = alg.decide(&cur, &[], &c);
        assert!(cur.distance(&P2::xy(3.0, 0.0)) < 1e-9, "got {cur:?}");
    }

    #[test]
    fn move_to_min_reset_clears_state() {
        let mut alg = MoveToMin::new();
        let c = ctx(1.0, 1.0, 0.0);
        let _ = alg.decide(&P2::origin(), &[P2::xy(3.0, 0.0)], &c);
        alg.reset(&c);
        // After reset, no standing target: stays put on a silent step.
        assert_eq!(alg.decide(&P2::origin(), &[], &c), P2::origin());
    }

    #[test]
    fn coin_flip_is_reproducible_after_reset() {
        let c = ctx(2.0, 1.0, 0.0);
        let reqs: Vec<[P2; 1]> = (0..20).map(|i| [P2::xy(i as f64, 1.0)]).collect();
        let run = |alg: &mut RandomizedCoinFlip<2>| {
            alg.reset(&c);
            let mut cur = P2::origin();
            let mut trace = Vec::new();
            for r in &reqs {
                cur = alg.decide(&cur, r, &c);
                trace.push(cur);
            }
            trace
        };
        let mut alg = RandomizedCoinFlip::new(77);
        let t1 = run(&mut alg);
        let t2 = run(&mut alg);
        assert_eq!(t1, t2);
    }

    #[test]
    fn coin_flip_certain_adoption_when_r_ge_2d() {
        // r/(2D) ≥ 1 → probability clamps to 1: target adopted immediately.
        let c = ctx(1.0, 10.0, 0.0);
        let mut alg = RandomizedCoinFlip::new(1);
        alg.reset(&c);
        let reqs = vec![P2::xy(3.0, 0.0); 2];
        let next = alg.decide(&P2::origin(), &reqs, &c);
        assert!(next.distance(&P2::xy(3.0, 0.0)) < 1e-9);
    }

    #[test]
    fn all_baselines_respect_budget() {
        use msp_geometry::sample::SeededSampler;
        let mut s = SeededSampler::new(5);
        let c = ctx(2.0, 0.7, 0.25);
        let budget = c.online_budget();
        let mut algs: Vec<Box<dyn OnlineAlgorithm<2>>> = vec![
            Box::new(Lazy),
            Box::new(FollowCenter::new()),
            Box::new(FractionalStep::new(2.0)),
            Box::new(MoveToMin::new()),
            Box::new(RandomizedCoinFlip::new(9)),
        ];
        for alg in &mut algs {
            alg.reset(&c);
            let mut cur = P2::origin();
            for _ in 0..50 {
                let r = s.int_inclusive(0, 4);
                let reqs: Vec<P2> = (0..r).map(|_| s.point_in_cube(5.0)).collect();
                let next = alg.decide(&cur, &reqs, &c);
                assert!(
                    next.distance(&cur) <= budget + 1e-9,
                    "{} exceeded budget",
                    alg.name()
                );
                cur = next;
            }
        }
    }
}
