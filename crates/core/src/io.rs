//! Plain-text instance serialization.
//!
//! A tiny line-oriented interchange format so instances can be saved,
//! diffed, shared, and replayed outside this workspace (no external
//! dependencies; everything is `f64` text):
//!
//! ```text
//! # mobile-server instance v1
//! dim 2
//! d 4
//! m 1
//! start 0 0
//! step 1 2 ; 3 4        // two requests: (1,2) and (3,4)
//! step                  // a silent step
//! step 5 6
//! ```
//!
//! Comments (`#`) and blank lines are ignored. Coordinates are
//! whitespace-separated, requests within a step separated by `;`.
//! Round-tripping is exact for every value with a finite shortest decimal
//! representation (Rust's float formatter is shortest-round-trip).

use crate::model::{Instance, Step};
use msp_geometry::Point;
use std::fmt::Write as _;

/// Errors produced by [`parse_instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 = whole-file problem).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serializes an instance to the text format.
pub fn write_instance<const N: usize>(instance: &Instance<N>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# mobile-server instance v1");
    let _ = writeln!(out, "dim {N}");
    let _ = writeln!(out, "d {}", instance.d);
    let _ = writeln!(out, "m {}", instance.max_move);
    let coords = |p: &Point<N>| -> String {
        p.coords()
            .iter()
            .map(|c| format!("{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out, "start {}", coords(&instance.start));
    for step in &instance.steps {
        if step.is_empty() {
            let _ = writeln!(out, "step");
        } else {
            let reqs = step
                .requests
                .iter()
                .map(&coords)
                .collect::<Vec<_>>()
                .join(" ; ");
            let _ = writeln!(out, "step {reqs}");
        }
    }
    out
}

/// Parses an instance of compile-time dimension `N` from the text format.
///
/// Fails (with the offending line number) on dimension mismatch, malformed
/// numbers, missing headers, or model-constraint violations.
pub fn parse_instance<const N: usize>(text: &str) -> Result<Instance<N>, ParseError> {
    let mut dim: Option<usize> = None;
    let mut d: Option<f64> = None;
    let mut m: Option<f64> = None;
    let mut start: Option<Point<N>> = None;
    let mut steps: Vec<Step<N>> = Vec::new();

    let parse_point = |fields: &[&str], line: usize| -> Result<Point<N>, ParseError> {
        if fields.len() != N {
            return Err(err(
                line,
                format!("expected {N} coordinates, found {}", fields.len()),
            ));
        }
        let mut p = Point::<N>::origin();
        for (i, f) in fields.iter().enumerate() {
            p[i] = f
                .parse::<f64>()
                .map_err(|_| err(line, format!("bad number {f:?}")))?;
        }
        Ok(p)
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match key {
            "dim" => {
                let v: usize = rest
                    .parse()
                    .map_err(|_| err(line_no, format!("bad dimension {rest:?}")))?;
                if v != N {
                    return Err(err(
                        line_no,
                        format!("file has dimension {v}, caller expects {N}"),
                    ));
                }
                dim = Some(v);
            }
            "d" => {
                d = Some(
                    rest.parse()
                        .map_err(|_| err(line_no, format!("bad D {rest:?}")))?,
                );
            }
            "m" => {
                m = Some(
                    rest.parse()
                        .map_err(|_| err(line_no, format!("bad m {rest:?}")))?,
                );
            }
            "start" => {
                let fields: Vec<&str> = rest.split_whitespace().collect();
                start = Some(parse_point(&fields, line_no)?);
            }
            "step" => {
                let mut requests = Vec::new();
                if !rest.is_empty() {
                    for part in rest.split(';') {
                        let fields: Vec<&str> = part.split_whitespace().collect();
                        if fields.is_empty() {
                            return Err(err(line_no, "empty request between ';'"));
                        }
                        requests.push(parse_point(&fields, line_no)?);
                    }
                }
                steps.push(Step::new(requests));
            }
            other => {
                return Err(err(line_no, format!("unknown directive {other:?}")));
            }
        }
    }

    let _ = dim.ok_or_else(|| err(0, "missing `dim` header"))?;
    let d = d.ok_or_else(|| err(0, "missing `d` header"))?;
    let m = m.ok_or_else(|| err(0, "missing `m` header"))?;
    let start = start.ok_or_else(|| err(0, "missing `start` header"))?;
    if !(d >= 1.0 && d.is_finite()) {
        return Err(err(0, format!("D must be ≥ 1, got {d}")));
    }
    if !(m > 0.0 && m.is_finite()) {
        return Err(err(0, format!("m must be positive, got {m}")));
    }
    Ok(Instance::new(d, m, start, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_geometry::P2;

    fn sample() -> Instance<2> {
        Instance::new(
            4.0,
            1.5,
            P2::xy(0.5, -0.25),
            vec![
                Step::new(vec![P2::xy(1.0, 2.0), P2::xy(-3.5, 4.25)]),
                Step::new(vec![]),
                Step::single(P2::xy(0.125, -7.0)),
            ],
        )
    }

    #[test]
    fn round_trip_is_exact() {
        let inst = sample();
        let text = write_instance(&inst);
        let back: Instance<2> = parse_instance(&text).unwrap();
        assert_eq!(back.d, inst.d);
        assert_eq!(back.max_move, inst.max_move);
        assert_eq!(back.start, inst.start);
        assert_eq!(back.horizon(), inst.horizon());
        for (a, b) in back.steps.iter().zip(&inst.steps) {
            assert_eq!(a.requests, b.requests);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hello\n dim 1 \nd 2\nm 1\nstart 0\nstep 3 # trailing\n\nstep\n";
        let inst: Instance<1> = parse_instance(text).unwrap();
        assert_eq!(inst.horizon(), 2);
        assert_eq!(inst.steps[0].requests[0].x(), 3.0);
        assert!(inst.steps[1].is_empty());
    }

    #[test]
    fn dimension_mismatch_reports_line() {
        let text = "dim 3\nd 1\nm 1\nstart 0 0 0\n";
        let e = parse_instance::<2>(text).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("dimension 3"));
    }

    #[test]
    fn wrong_coordinate_count_reports_line() {
        let text = "dim 2\nd 1\nm 1\nstart 0 0\nstep 1 2 ; 3\n";
        let e = parse_instance::<2>(text).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("expected 2 coordinates"));
    }

    #[test]
    fn bad_number_reports_line() {
        let text = "dim 1\nd 1\nm 1\nstart zero\n";
        let e = parse_instance::<1>(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bad number"));
    }

    #[test]
    fn missing_headers_rejected() {
        let e = parse_instance::<1>("dim 1\nd 1\nstart 0\n").unwrap_err();
        assert!(e.message.contains("missing `m`"));
        let e = parse_instance::<1>("d 1\nm 1\nstart 0\n").unwrap_err();
        assert!(e.message.contains("missing `dim`"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse_instance::<1>("dim 1\nd 1\nm 1\nstart 0\nfrobnicate 3\n").unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn invalid_model_parameters_rejected() {
        let e = parse_instance::<1>("dim 1\nd 0.5\nm 1\nstart 0\n").unwrap_err();
        assert!(e.message.contains("D must be"));
        let e = parse_instance::<1>("dim 1\nd 1\nm 0\nstart 0\n").unwrap_err();
        assert!(e.message.contains("m must be"));
    }

    #[test]
    fn display_of_error_mentions_line() {
        let e = err(7, "boom");
        assert_eq!(format!("{e}"), "line 7: boom");
    }
}
