//! Speed-limited server fleets — the paper's future-work direction.
//!
//! The conclusion asks whether "the idea of limiting the movement of
//! resources within a time slot also can be applied to other popular
//! models such as the k-Server Problem (effectively turning it into the
//! Page Migration Problem with multiple pages)". This module implements
//! that model as an exploratory extension: `k` mobile servers each move at
//! most `m` per round (cost `D` per unit distance each), and every request
//! is served by the *nearest* server after the moves.
//!
//! No competitive analysis is claimed here (that is precisely the open
//! problem); the module provides the substrate — cost accounting, a
//! partition-based fleet version of Move-to-Center, and a greedy fleet —
//! plus experiment E12, which measures how much a second or fourth server
//! buys on multi-site workloads.

use crate::algorithm::AlgContext;
use crate::cost::{CostBreakdown, ServingOrder, StepCost};
use crate::model::Instance;
use crate::mtc::MoveToCenter;
use msp_geometry::median::{weighted_center, MedianOptions};
use msp_geometry::{step_towards, Point};

/// A fleet policy: given all server positions and the step's requests,
/// propose new positions (clamped per-server to the budget by the runner).
pub trait FleetAlgorithm<const N: usize> {
    /// Stable name for tables.
    fn name(&self) -> String;
    /// Resets internal state for a fresh run.
    fn reset(&mut self, ctx: &AlgContext<N>, k: usize);
    /// Proposes the next position of every server.
    fn decide(
        &mut self,
        servers: &[Point<N>],
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Vec<Point<N>>;
}

impl<const N: usize> FleetAlgorithm<N> for Box<dyn FleetAlgorithm<N>> {
    fn name(&self) -> String {
        self.as_ref().name()
    }
    fn reset(&mut self, ctx: &AlgContext<N>, k: usize) {
        self.as_mut().reset(ctx, k);
    }
    fn decide(
        &mut self,
        servers: &[Point<N>],
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Vec<Point<N>> {
        self.as_mut().decide(servers, requests, ctx)
    }
}

/// Result of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetRunResult<const N: usize> {
    /// Policy name.
    pub algorithm: String,
    /// Positions over time: `trajectories[i]` is server `i`'s path
    /// (`T + 1` points each).
    pub trajectories: Vec<Vec<Point<N>>>,
    /// Aggregated cost (movement sums over all servers; service takes the
    /// per-request minimum over servers).
    pub cost: CostBreakdown,
}

impl<const N: usize> FleetRunResult<N> {
    /// Total cost of the run.
    pub fn total_cost(&self) -> f64 {
        self.cost.total()
    }
}

/// Service cost with a fleet: each request goes to its nearest server.
pub fn fleet_service_cost<const N: usize>(servers: &[Point<N>], requests: &[Point<N>]) -> f64 {
    requests
        .iter()
        .map(|v| {
            servers
                .iter()
                .map(|s| s.distance(v))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

/// Partitions request indices by nearest server (ties to the lower index).
pub fn partition_by_nearest<const N: usize>(
    servers: &[Point<N>],
    requests: &[Point<N>],
) -> Vec<Vec<usize>> {
    let mut parts = vec![Vec::new(); servers.len()];
    for (ri, v) in requests.iter().enumerate() {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (si, s) in servers.iter().enumerate() {
            let d = s.distance(v);
            if d < best_d {
                best_d = d;
                best = si;
            }
        }
        parts[best].push(ri);
    }
    parts
}

/// Runs a fleet policy over an instance with `k` servers, all starting at
/// the instance start. Movement budgets are enforced per server.
pub fn run_fleet<const N: usize, A: FleetAlgorithm<N>>(
    instance: &Instance<N>,
    k: usize,
    algorithm: &mut A,
    delta: f64,
    order: ServingOrder,
) -> FleetRunResult<N> {
    assert!(k >= 1, "need at least one server");
    let ctx = AlgContext::new(instance, delta);
    algorithm.reset(&ctx, k);
    let budget = ctx.online_budget();

    let mut servers = vec![instance.start; k];
    let mut trajectories: Vec<Vec<Point<N>>> = vec![vec![instance.start]; k];
    let mut cost = CostBreakdown {
        per_step: Vec::with_capacity(instance.horizon()),
        ..Default::default()
    };

    for step in &instance.steps {
        let proposals = algorithm.decide(&servers, &step.requests, &ctx);
        assert_eq!(
            proposals.len(),
            k,
            "{} proposed {} positions for {k} servers",
            algorithm.name(),
            proposals.len()
        );
        let mut movement = 0.0;
        let mut next = Vec::with_capacity(k);
        for (s, p) in servers.iter().zip(&proposals) {
            let clamped = step_towards(s, p, budget);
            movement += instance.d * s.distance(&clamped);
            next.push(clamped);
        }
        let serve_from = match order {
            ServingOrder::MoveFirst => &next,
            ServingOrder::AnswerFirst => &servers,
        };
        let service = fleet_service_cost(serve_from, &step.requests);
        cost.movement += movement;
        cost.service += service;
        cost.per_step.push(StepCost { movement, service });
        servers = next;
        for (i, s) in servers.iter().enumerate() {
            trajectories[i].push(*s);
        }
    }

    FleetRunResult {
        algorithm: algorithm.name(),
        trajectories,
        cost,
    }
}

/// Fleet version of Move-to-Center: requests are partitioned to their
/// nearest server; each server applies the paper's single-server rule to
/// its own partition (`r_i` = partition size), staying put when idle.
#[derive(Clone, Debug, Default)]
pub struct MtcFleet<const N: usize> {
    single: MoveToCenter<N>,
}

impl<const N: usize> MtcFleet<N> {
    /// Paper-faithful per-server rule.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<const N: usize> FleetAlgorithm<N> for MtcFleet<N> {
    fn name(&self) -> String {
        "mtc-fleet".into()
    }

    fn reset(&mut self, _ctx: &AlgContext<N>, _k: usize) {}

    fn decide(
        &mut self,
        servers: &[Point<N>],
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Vec<Point<N>> {
        let parts = partition_by_nearest(servers, requests);
        servers
            .iter()
            .zip(&parts)
            .map(|(s, part)| {
                if part.is_empty() {
                    return *s;
                }
                let mine: Vec<Point<N>> = part.iter().map(|&i| requests[i]).collect();
                let c = self.single.center_of(&mine, s);
                let pull = (mine.len() as f64 / ctx.d).min(1.0) * s.distance(&c);
                step_towards(s, &c, pull.min(ctx.online_budget()))
            })
            .collect()
    }
}

/// Greedy fleet: each server moves at full budget towards the 1-median of
/// its partition.
#[derive(Clone, Debug, Default)]
pub struct GreedyFleet;

impl<const N: usize> FleetAlgorithm<N> for GreedyFleet {
    fn name(&self) -> String {
        "greedy-fleet".into()
    }

    fn reset(&mut self, _ctx: &AlgContext<N>, _k: usize) {}

    fn decide(
        &mut self,
        servers: &[Point<N>],
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Vec<Point<N>> {
        let parts = partition_by_nearest(servers, requests);
        servers
            .iter()
            .zip(&parts)
            .map(|(s, part)| {
                if part.is_empty() {
                    return *s;
                }
                let mine: Vec<Point<N>> = part.iter().map(|&i| requests[i]).collect();
                let c = weighted_center(&mine, s, MedianOptions::default());
                step_towards(s, &c, ctx.online_budget())
            })
            .collect()
    }
}

/// Spread fleet: like [`MtcFleet`], but idle servers drift towards distinct
/// request clusters instead of staying put — a simple exploration bonus
/// that helps when demand splits across sites. Idle server `i` heads (at
/// half budget) towards the `i`-th farthest request from the busy pack,
/// seeding coverage.
#[derive(Clone, Debug, Default)]
pub struct SpreadFleet<const N: usize> {
    single: MoveToCenter<N>,
}

impl<const N: usize> SpreadFleet<N> {
    /// Fleet with the exploration heuristic enabled.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<const N: usize> FleetAlgorithm<N> for SpreadFleet<N> {
    fn name(&self) -> String {
        "spread-fleet".into()
    }

    fn reset(&mut self, _ctx: &AlgContext<N>, _k: usize) {}

    fn decide(
        &mut self,
        servers: &[Point<N>],
        requests: &[Point<N>],
        ctx: &AlgContext<N>,
    ) -> Vec<Point<N>> {
        let parts = partition_by_nearest(servers, requests);
        servers
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let part = &parts[si];
                if !part.is_empty() {
                    let mine: Vec<Point<N>> = part.iter().map(|&i| requests[i]).collect();
                    let c = self.single.center_of(&mine, s);
                    let pull = (mine.len() as f64 / ctx.d).min(1.0) * s.distance(&c);
                    return step_towards(s, &c, pull.min(ctx.online_budget()));
                }
                // Idle: drift towards the request farthest from any busy
                // server, claiming uncovered demand.
                if requests.is_empty() {
                    return *s;
                }
                let target = requests
                    .iter()
                    .max_by(|a, b| {
                        let da = servers
                            .iter()
                            .map(|t| t.distance(a))
                            .fold(f64::INFINITY, f64::min);
                        let db = servers
                            .iter()
                            .map(|t| t.distance(b))
                            .fold(f64::INFINITY, f64::min);
                        da.total_cmp(&db)
                    })
                    .unwrap();
                step_towards(s, target, ctx.online_budget() / 2.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Step;
    use crate::simulator::run as run_single;
    use msp_geometry::P2;

    fn two_site_instance(t: usize) -> Instance<2> {
        // Requests alternate between two far-apart sites.
        let a = P2::xy(-10.0, 0.0);
        let b = P2::xy(10.0, 0.0);
        let steps = (0..t)
            .map(|i| Step::new(vec![if i % 2 == 0 { a } else { b }]))
            .collect();
        Instance::new(2.0, 1.0, P2::origin(), steps)
    }

    #[test]
    fn single_server_fleet_matches_the_plain_simulator() {
        let inst = two_site_instance(40);
        let mut fleet = MtcFleet::new();
        let fleet_res = run_fleet(&inst, 1, &mut fleet, 0.25, ServingOrder::MoveFirst);
        let mut single = MoveToCenter::new();
        let single_res = run_single(&inst, &mut single, 0.25, ServingOrder::MoveFirst);
        assert!(
            (fleet_res.total_cost() - single_res.total_cost()).abs() < 1e-9,
            "k=1 fleet {} vs single-server {}",
            fleet_res.total_cost(),
            single_res.total_cost()
        );
        assert_eq!(fleet_res.trajectories[0], single_res.positions);
    }

    #[test]
    fn two_servers_beat_one_on_two_sites() {
        let inst = two_site_instance(200);
        let mut fleet = MtcFleet::new();
        let one = run_fleet(&inst, 1, &mut fleet, 0.0, ServingOrder::MoveFirst).total_cost();
        let two = run_fleet(&inst, 2, &mut fleet, 0.0, ServingOrder::MoveFirst).total_cost();
        // A second server can park on the other site; one server must
        // either commute or absorb the distance forever.
        assert!(
            two < 0.8 * one,
            "second server should clearly help: k=1 → {one}, k=2 → {two}"
        );
    }

    #[test]
    fn budgets_enforced_per_server() {
        let inst = two_site_instance(30);
        let mut fleet = GreedyFleet;
        let res = run_fleet(&inst, 3, &mut fleet, 0.5, ServingOrder::MoveFirst);
        let budget = 1.5;
        for traj in &res.trajectories {
            for w in traj.windows(2) {
                assert!(w[0].distance(&w[1]) <= budget + 1e-9);
            }
        }
    }

    #[test]
    fn fleet_service_uses_nearest_server() {
        let servers = [P2::xy(-5.0, 0.0), P2::xy(5.0, 0.0)];
        let requests = [P2::xy(-4.0, 0.0), P2::xy(6.0, 0.0), P2::origin()];
        // 1 + 1 + 5.
        assert!((fleet_service_cost(&servers, &requests) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn partition_assigns_to_nearest() {
        let servers = [P2::xy(-5.0, 0.0), P2::xy(5.0, 0.0)];
        let requests = [P2::xy(-4.0, 0.0), P2::xy(6.0, 0.0), P2::xy(1.0, 0.0)];
        let parts = partition_by_nearest(&servers, &requests);
        assert_eq!(parts[0], vec![0]);
        assert_eq!(parts[1], vec![1, 2]);
    }

    #[test]
    fn spread_fleet_covers_a_second_site_faster_than_mtc_fleet() {
        // Both sites fire every round; idle drift lets the spare server
        // claim the far site even though the near server hogs the
        // partition early on.
        let a = P2::xy(-8.0, 0.0);
        let b = P2::xy(8.0, 0.1);
        let steps = (0..120).map(|_| Step::new(vec![a, b])).collect();
        let inst = Instance::new(2.0, 1.0, P2::origin(), steps);
        let mut spread = SpreadFleet::new();
        let mut plain = MtcFleet::new();
        let s = run_fleet(&inst, 2, &mut spread, 0.0, ServingOrder::MoveFirst).total_cost();
        let p = run_fleet(&inst, 2, &mut plain, 0.0, ServingOrder::MoveFirst).total_cost();
        assert!(
            s <= p + 1e-9,
            "exploration should not hurt on two hot sites: spread {s} vs plain {p}"
        );
    }

    #[test]
    fn answer_first_fleet_charges_old_positions() {
        let inst = two_site_instance(2);
        let mut fleet = GreedyFleet;
        let mf = run_fleet(&inst, 1, &mut fleet, 0.0, ServingOrder::MoveFirst).total_cost();
        let af = run_fleet(&inst, 1, &mut fleet, 0.0, ServingOrder::AnswerFirst).total_cost();
        assert!(af >= mf, "answer-first should not be cheaper here");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let inst = two_site_instance(2);
        let mut fleet = MtcFleet::new();
        let _ = run_fleet(&inst, 0, &mut fleet, 0.0, ServingOrder::MoveFirst);
    }
}
