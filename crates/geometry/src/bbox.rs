//! Axis-aligned bounding boxes over `N`-dimensional point sets.
//!
//! Used by workload generators (to confine drifting hotspots to an arena),
//! the KD-tree (node extents), and the offline grid brute-force solver
//! (discretization domain).

use crate::point::Point;

/// A (possibly empty) axis-aligned box `[min, max]` in `N` dimensions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb<const N: usize> {
    /// Componentwise lower corner.
    pub min: Point<N>,
    /// Componentwise upper corner.
    pub max: Point<N>,
}

impl<const N: usize> Aabb<N> {
    /// The empty box (inverted bounds); the identity for [`Aabb::union`].
    pub fn empty() -> Self {
        Aabb {
            min: Point::splat(f64::INFINITY),
            max: Point::splat(f64::NEG_INFINITY),
        }
    }

    /// Box spanning two corner points (given in any order).
    pub fn from_corners(a: Point<N>, b: Point<N>) -> Self {
        Aabb {
            min: a.min_components(&b),
            max: a.max_components(&b),
        }
    }

    /// Smallest box containing all `points`; empty box for an empty slice.
    pub fn from_points(points: &[Point<N>]) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.insert(p);
        }
        b
    }

    /// A cube of half-width `r` centred at `c`.
    pub fn cube(c: Point<N>, r: f64) -> Self {
        Aabb {
            min: c - Point::splat(r),
            max: c + Point::splat(r),
        }
    }

    /// True when no point has been inserted.
    pub fn is_empty(&self) -> bool {
        (0..N).any(|i| self.min[i] > self.max[i])
    }

    /// Grows the box to contain `p`.
    pub fn insert(&mut self, p: &Point<N>) {
        self.min = self.min.min_components(p);
        self.max = self.max.max_components(p);
    }

    /// Smallest box containing both operands.
    pub fn union(&self, other: &Self) -> Self {
        Aabb {
            min: self.min.min_components(&other.min),
            max: self.max.max_components(&other.max),
        }
    }

    /// Membership test (closed box).
    pub fn contains(&self, p: &Point<N>) -> bool {
        (0..N).all(|i| self.min[i] <= p[i] && p[i] <= self.max[i])
    }

    /// Projects `p` onto the box (componentwise clamp). Workload generators
    /// use this to keep drifting processes inside the arena.
    pub fn clamp(&self, p: &Point<N>) -> Point<N> {
        let mut out = *p;
        for i in 0..N {
            out[i] = out[i].clamp(self.min[i], self.max[i]);
        }
        out
    }

    /// Centre point of the box.
    pub fn center(&self) -> Point<N> {
        (self.min + self.max) / 2.0
    }

    /// Edge length along dimension `i`.
    pub fn extent(&self, i: usize) -> f64 {
        self.max[i] - self.min[i]
    }

    /// Index of the widest dimension (split axis for the KD-tree).
    pub fn widest_dim(&self) -> usize {
        (0..N)
            .max_by(|&a, &b| self.extent(a).total_cmp(&self.extent(b)))
            .unwrap_or(0)
    }

    /// Squared distance from `p` to the box (zero inside); the KD-tree
    /// pruning bound.
    pub fn distance_sq_to(&self, p: &Point<N>) -> f64 {
        let mut s = 0.0;
        for i in 0..N {
            let d = if p[i] < self.min[i] {
                self.min[i] - p[i]
            } else if p[i] > self.max[i] {
                p[i] - self.max[i]
            } else {
                0.0
            };
            s += d * d;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::P2;

    #[test]
    fn empty_box_contains_nothing() {
        let b = Aabb::<2>::empty();
        assert!(b.is_empty());
        assert!(!b.contains(&P2::origin()));
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [P2::xy(1.0, 5.0), P2::xy(-2.0, 3.0), P2::xy(4.0, -1.0)];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, P2::xy(-2.0, -1.0));
        assert_eq!(b.max, P2::xy(4.0, 5.0));
        for p in &pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn corners_any_order() {
        let b = Aabb::from_corners(P2::xy(3.0, -1.0), P2::xy(0.0, 2.0));
        assert_eq!(b.min, P2::xy(0.0, -1.0));
        assert_eq!(b.max, P2::xy(3.0, 2.0));
    }

    #[test]
    fn clamp_projects_outside_points() {
        let b = Aabb::from_corners(P2::xy(0.0, 0.0), P2::xy(1.0, 1.0));
        assert_eq!(b.clamp(&P2::xy(5.0, 0.5)), P2::xy(1.0, 0.5));
        assert_eq!(b.clamp(&P2::xy(-1.0, -1.0)), P2::xy(0.0, 0.0));
        let inside = P2::xy(0.3, 0.7);
        assert_eq!(b.clamp(&inside), inside);
    }

    #[test]
    fn union_and_center() {
        let a = Aabb::from_corners(P2::xy(0.0, 0.0), P2::xy(1.0, 1.0));
        let c = Aabb::from_corners(P2::xy(2.0, 2.0), P2::xy(3.0, 3.0));
        let u = a.union(&c);
        assert_eq!(u.min, P2::xy(0.0, 0.0));
        assert_eq!(u.max, P2::xy(3.0, 3.0));
        assert_eq!(u.center(), P2::xy(1.5, 1.5));
    }

    #[test]
    fn widest_dim_and_extent() {
        let b = Aabb::from_corners(P2::xy(0.0, 0.0), P2::xy(10.0, 2.0));
        assert_eq!(b.widest_dim(), 0);
        assert_eq!(b.extent(0), 10.0);
        assert_eq!(b.extent(1), 2.0);
    }

    #[test]
    fn distance_sq_outside_and_inside() {
        let b = Aabb::from_corners(P2::xy(0.0, 0.0), P2::xy(1.0, 1.0));
        assert_eq!(b.distance_sq_to(&P2::xy(0.5, 0.5)), 0.0);
        assert_eq!(b.distance_sq_to(&P2::xy(2.0, 0.5)), 1.0);
        assert_eq!(b.distance_sq_to(&P2::xy(2.0, 2.0)), 2.0);
    }

    #[test]
    fn cube_constructor() {
        let b = Aabb::cube(P2::xy(1.0, 1.0), 2.0);
        assert_eq!(b.min, P2::xy(-1.0, -1.0));
        assert_eq!(b.max, P2::xy(3.0, 3.0));
    }
}
