//! Centers of request sets: 1-D medians and the geometric median.
//!
//! The Move-to-Center algorithm of the paper targets, in each step, the
//! point `c` minimizing `Σ_i d(c, v_i)` over the current requests
//! `v_1..v_r` — the *geometric median* (Fermat–Weber point). The paper's
//! tie-breaking rule is explicit: "If `c` is not unique, pick the one
//! minimizing `d(P_Alg, c)`". Non-uniqueness occurs exactly when the
//! requests are collinear with an even multiset split, in which case the
//! minimizer set is a segment; we then return the point of the segment
//! closest to the reference position, as required.
//!
//! For points in general position we run the Weiszfeld fixed-point
//! iteration with the Vardi–Zhang correction, which remains convergent when
//! an iterate lands exactly on an input point (plain Weiszfeld divides by
//! zero there). Weiszfeld contracts only linearly near the optimum, so the
//! solve is *hybrid*: a coarse Weiszfeld phase drops into damped Newton
//! (quadratic near the smooth optimum), and a short Weiszfeld verification
//! pass re-checks the fixed-point residual at the requested tolerance.
//!
//! **Hot path:** simulations solve a median per step on request sets that
//! drift slowly, so consecutive optima are close. [`MedianSolver`] keeps
//! the previous center as a warm-start iterate plus reusable scratch
//! buffers (an allocation-free `weighted_center_into`-style API) and
//! exposes iteration-count telemetry; the free functions below remain the
//! stateless cold-start entry points.

use crate::point::Point;
use crate::soa;

/// Convergence knobs for the geometric-median iteration.
#[derive(Clone, Copy, Debug)]
pub struct MedianOptions {
    /// Maximum number of Weiszfeld/Vardi–Zhang iterations.
    pub max_iters: usize,
    /// Stop when consecutive iterates are closer than this.
    pub tol: f64,
}

impl Default for MedianOptions {
    fn default() -> Self {
        MedianOptions {
            max_iters: 128,
            tol: 1e-13,
        }
    }
}

/// Relative coarse tolerance for the first Weiszfeld phase, scaled by the
/// mean point distance of the starting iterate: Weiszfeld contracts only
/// linearly (iteration count depends *logarithmically* on the start
/// distance), so the hand-off to quadratically convergent Newton happens
/// as soon as the iterate is plausibly inside the basin. The verification
/// phase and the subgradient-gap restart loop guard correctness.
const COARSE_REL_TOL: f64 = 1e-2;

/// Iteration cap of the coarse Weiszfeld phase (the verification phase may
/// still run up to `MedianOptions::max_iters` if Newton stalls).
const COARSE_CAP: usize = 8;

/// Sum of Euclidean distances from `c` to every point — the objective the
/// geometric median minimizes, and the per-step service cost of the model.
/// Chunked ([`soa::sum_distances_points`]); `soa::sum_distances_points_scalar`
/// is the parity oracle.
pub fn sum_of_distances<const N: usize>(points: &[Point<N>], c: &Point<N>) -> f64 {
    soa::sum_distances_points(points, c)
}

/// Weighted variant of [`sum_of_distances`]. Chunked with **in-order**
/// accumulation, so objective comparisons inside the solver (line
/// searches, anchor snaps) are bit-identical to the scalar loop.
pub fn weighted_sum_of_distances<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    c: &Point<N>,
) -> f64 {
    soa::weighted_sum_distances_points(points, weights, c)
}

/// Arithmetic mean of the points. Minimizes the sum of *squared* distances;
/// used as the Weiszfeld starting iterate and as an ablation target (A2).
///
/// # Panics
/// Panics on an empty slice — a centroid of nothing is undefined.
pub fn centroid<const N: usize>(points: &[Point<N>]) -> Point<N> {
    assert!(!points.is_empty(), "centroid of empty point set");
    let mut acc = Point::origin();
    for p in points {
        acc += *p;
    }
    acc / points.len() as f64
}

/// The closed interval of minimizers of `t ↦ Σ_i w_i·|t − x_i|` on the
/// line, computed into caller-provided index scratch (no allocation when
/// `order` has capacity).
fn weighted_line_median_interval_with(
    values: &[f64],
    weights: &[f64],
    order: &mut Vec<usize>,
) -> (f64, f64) {
    assert!(!values.is_empty(), "median of empty set");
    assert_eq!(values.len(), weights.len(), "length mismatch");
    order.clear();
    order.extend(0..values.len());
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    let half = total / 2.0;

    let mut prefix = 0.0;
    let mut lo = values[order[0]];
    let mut hi = values[order[order.len() - 1]];
    for (k, &i) in order.iter().enumerate() {
        prefix += weights[i];
        if prefix >= half - 1e-15 * total {
            lo = values[i];
            // If the prefix weight hits exactly half, the flat stretch of the
            // objective extends to the next distinct value; otherwise the
            // minimizer is unique.
            if (prefix - half).abs() <= 1e-12 * total && k + 1 < order.len() {
                hi = values[order[k + 1]];
            } else {
                hi = values[i];
            }
            break;
        }
    }
    (lo, hi)
}

/// The closed interval of minimizers of `t ↦ Σ_i w_i·|t − x_i|` on the line.
///
/// With total weight `W`, the minimizer set is `[lo, hi]` where `lo` is the
/// smallest `x` with prefix weight `≥ W/2` and `hi` the smallest `x` with
/// prefix weight `> W/2` (collapsing to a single point unless the weight
/// splits exactly in half at a gap). Returns `(lo, hi)`.
///
/// # Panics
/// Panics when `values` is empty or lengths mismatch.
pub fn weighted_line_median_interval(values: &[f64], weights: &[f64]) -> (f64, f64) {
    let mut order = Vec::with_capacity(values.len());
    weighted_line_median_interval_with(values, weights, &mut order)
}

/// Unweighted median interval on the line: `[x_(k), x_(k+1)]` for `2k`
/// points, the middle order statistic for an odd count.
pub fn line_median_interval(values: &[f64]) -> (f64, f64) {
    let w = vec![1.0; values.len()];
    weighted_line_median_interval(values, &w)
}

/// Detects whether all points lie on a common line (within `tol`).
///
/// Returns `Some((base, unit_direction))` when collinear — including the
/// degenerate all-equal case, where the direction is arbitrary — and `None`
/// otherwise. Collinearity is the only situation in which the geometric
/// median can be non-unique, so [`weighted_center`] uses this to apply the
/// paper's tie-breaking rule exactly.
pub fn collinear<const N: usize>(points: &[Point<N>], tol: f64) -> Option<(Point<N>, Point<N>)> {
    let base = points[0];
    // Find the farthest point from the base to define a stable direction.
    let mut dir = Point::origin();
    let mut best = 0.0;
    for p in points {
        let d = (*p - base).norm();
        if d > best {
            best = d;
            dir = *p - base;
        }
    }
    let Some(u) = dir.normalized() else {
        // All points coincide with the base.
        let mut e = Point::origin();
        e[0] = 1.0;
        return Some((base, e));
    };
    let scale = best.max(1.0);
    for p in points {
        let v = *p - base;
        let along = v.dot(&u);
        let off = (v - u * along).norm();
        if off > tol * scale {
            return None;
        }
    }
    Some((base, u))
}

/// Exact collinear solution with the paper's tie-break, writing projections
/// into caller scratch.
fn collinear_center_with<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    reference: &Point<N>,
    base: Point<N>,
    u: Point<N>,
    ts: &mut Vec<f64>,
    order: &mut Vec<usize>,
) -> Point<N> {
    ts.clear();
    ts.extend(points.iter().map(|p| (*p - base).dot(&u)));
    let (lo, hi) = weighted_line_median_interval_with(ts, weights, order);
    let t_ref = (*reference - base).dot(&u);
    let t = t_ref.clamp(lo, hi);
    base + u * t
}

/// One Weiszfeld/Vardi–Zhang step from `y`. Returns `None` when `y` itself
/// is certified optimal (all mass coincident, or the coincident anchor
/// satisfies the subgradient condition).
#[inline]
fn weiszfeld_step<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    y: &Point<N>,
) -> Option<Point<N>> {
    // Split the points into those coinciding with the iterate and the
    // rest; accumulate the Weiszfeld weights over the rest. The O(n)
    // accumulation runs through the chunked kernel (vectorized distance
    // blocks, in-order accumulation — bit-identical to the scalar loop).
    let soa::WeiszfeldAccum {
        num,
        denom,
        coincident_weight,
        r_vec,
    } = soa::weiszfeld_accumulate(points, weights, y, 1e-14);
    if denom == 0.0 {
        // Every point coincides with the iterate.
        return None;
    }
    let t = num / denom; // plain Weiszfeld target
    if coincident_weight > 0.0 {
        let r_norm = r_vec.norm();
        if r_norm <= coincident_weight {
            // The coincident point is the median (subgradient condition).
            return None;
        }
        // Vardi–Zhang: damped step that escapes the anchor point.
        let beta = (coincident_weight / r_norm).min(1.0);
        Some(t * (1.0 - beta) + *y * beta)
    } else {
        Some(t)
    }
}

/// Iterates Weiszfeld from `*y` until the step shrinks below `tol` or
/// `max_iters` is exhausted. Returns `(iterations, certified)`; `certified`
/// means the iterate was proven optimal by the subgradient condition.
fn weiszfeld_until<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    y: &mut Point<N>,
    tol: f64,
    max_iters: usize,
) -> (usize, bool) {
    let mut iters = 0;
    while iters < max_iters {
        iters += 1;
        match weiszfeld_step(points, weights, y) {
            None => return (iters, true),
            Some(next) => {
                let shift = next.distance(y);
                *y = next;
                if shift <= tol {
                    return (iters, false);
                }
            }
        }
    }
    (iters, false)
}

/// Weighted subgradient optimality residual at `y` (0 at a certified
/// optimum): `max(0, ‖Σ_{x_i ≠ y} w_i·(y − x_i)/d_i‖ − Σ_{x_i = y} w_i)`.
fn weighted_optimality_gap<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    y: &Point<N>,
) -> f64 {
    let mut grad = Point::<N>::origin();
    let mut coincident = 0.0;
    for (p, w) in points.iter().zip(weights) {
        let d = p.distance(y);
        if d <= 1e-12 {
            coincident += *w;
        } else {
            grad += (*y - *p) * (*w / d);
        }
    }
    (grad.norm() - coincident).max(0.0)
}

/// Fast coarse-Weiszfeld → Newton pass from the starting iterate.
/// `certified` means the Vardi–Zhang subgradient condition proved the
/// returned point optimal. The coarse phase stops as soon as the step
/// shrinks below a spread-relative *basin* threshold — Weiszfeld contracts
/// linearly, so a small step means a close start, and Newton converges
/// quadratically from there.
fn coarse_then_newton<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    y: &mut Point<N>,
    opts: MedianOptions,
    spread: f64,
) -> (usize, bool) {
    let coarse_tol = opts.tol.max(COARSE_REL_TOL * spread);
    let coarse_cap = opts.max_iters.min(COARSE_CAP);
    let (it1, certified) = weiszfeld_until(points, weights, y, coarse_tol, coarse_cap);
    if certified {
        return (it1, true);
    }
    // Newton finishes the job quadratically where Weiszfeld crawls
    // (backtracking keeps it safe even when the basin guess was wrong).
    *y = newton_polish(points, weights, *y, opts);
    (it1, false)
}

/// Snaps `y` onto its nearest anchor when the anchor actually improves the
/// objective — the optimum can sit exactly on an input point, where the
/// smooth machinery stalls a hair away. One O(n) distance pass plus two
/// objective evaluations; the exhaustive all-anchor scan (O(n²)) is only
/// used by the stall-recovery path.
fn snap_to_near_anchor<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    y: Point<N>,
    spread: f64,
) -> Point<N> {
    let Some((idx, dist)) = soa::nearest_index_points(points, &y) else {
        return y;
    };
    if dist > 1e-6 * (1.0 + spread) {
        return y;
    }
    let nearest = &points[idx];
    if weighted_sum_of_distances(points, weights, nearest)
        < weighted_sum_of_distances(points, weights, &y)
    {
        *nearest
    } else {
        y
    }
}

/// Full general-position solve from the starting iterate: fast
/// coarse-Weiszfeld → Newton passes with a subgradient-gap acceptance
/// test, escalating to the classic full-length Weiszfeld sweep and
/// anchor restarts only when the fast pass stalls.
///
/// Weiszfeld stalls when its trajectory grazes a *non-optimal* anchor
/// point — steps collapse near the `1/d` singularity long before the
/// iterate is optimal, and Newton's curvature blows up there too. The
/// residual check catches exactly this: on a stall the solve restarts from
/// the lowest-objective anchors, where the Vardi–Zhang step either
/// certifies optimality or escapes decisively. Returns the center and the
/// total Weiszfeld iterations spent (the telemetry currency).
fn solve_from<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    start: Point<N>,
    opts: MedianOptions,
) -> (Point<N>, usize) {
    let total_weight: f64 = weights.iter().sum();
    // Spread scale of the configuration (mean anchor distance from the
    // weighted centroid): start-independent, so warm and cold starts face
    // the same thresholds.
    let spread = weighted_sum_of_distances(points, weights, &weighted_centroid(points, weights))
        / total_weight;
    let gap_tol = 1e-10 * total_weight;
    let mut iters_total = 0;
    let mut best: Option<(f64, Point<N>)> = None;
    let mut next_start = start;
    // Anchors ranked by objective, computed once on the first stall and
    // reused across attempts (the ranking is iterate-independent).
    let mut ranked: Option<Vec<(f64, usize)>> = None;
    for attempt in 0..3 {
        let mut y = next_start;
        let (iters, certified) = coarse_then_newton(points, weights, &mut y, opts, spread);
        iters_total += iters;
        if certified {
            return (y, iters_total);
        }
        if weighted_optimality_gap(points, weights, &y) <= gap_tol {
            return (snap_to_near_anchor(points, weights, y, spread), iters_total);
        }

        // The fast pass stalled (flat valley or a grazed anchor). Fall back
        // to the classic full-length Weiszfeld sweep at the tight tolerance
        // before judging again, so the hybrid never returns a looser answer
        // than the reference iteration.
        let (it2, certified) = weiszfeld_until(points, weights, &mut y, opts.tol, opts.max_iters);
        iters_total += it2;
        if certified {
            return (y, iters_total);
        }
        let ranked = ranked.get_or_insert_with(|| {
            let mut r: Vec<(f64, usize)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (weighted_sum_of_distances(points, weights, p), i))
                .collect();
            r.sort_by(|a, b| a.0.total_cmp(&b.0));
            r
        });
        // Exhaustive snap: the stall may sit a hair away from an optimal
        // anchor — the best anchor is the head of the ranking.
        let mut best_here = y;
        let mut best_obj = weighted_sum_of_distances(points, weights, &y);
        if let Some(&(anchor_obj, anchor_idx)) = ranked.first() {
            if anchor_obj < best_obj {
                best_obj = anchor_obj;
                best_here = points[anchor_idx];
            }
        }
        if weighted_optimality_gap(points, weights, &best_here) <= gap_tol.max(1e-8 * total_weight)
        {
            return (best_here, iters_total);
        }
        if best.is_none_or(|(b, _)| best_obj < b) {
            best = Some((best_obj, best_here));
        }
        // Restart from the best not-yet-tried anchor: the Vardi–Zhang step
        // either certifies it or escapes it decisively. Attempt k+1 starts
        // from the k-th best anchor.
        let Some(&(_, idx)) = ranked.get(attempt) else {
            break;
        };
        next_start = points[idx];
    }
    (best.expect("at least one pipeline pass ran").1, iters_total)
}

/// The seed's reference solver — plain 128-iteration Weiszfeld from the
/// weighted centroid, Newton polish, and an exhaustive anchor snap —
/// retained verbatim as an independent oracle for parity tests and as the
/// "before" baseline of the PR-1 median benchmarks. Do not use on hot
/// paths; [`weighted_center_weighted`] and [`MedianSolver`] return the
/// same centers (within `1e-9`) at a fraction of the cost.
pub fn weighted_center_classic<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    reference: &Point<N>,
    opts: MedianOptions,
) -> Point<N> {
    assert!(!points.is_empty(), "center of empty request set");
    assert_eq!(points.len(), weights.len(), "length mismatch");
    if points.len() == 1 {
        return points[0];
    }
    if let Some((base, u)) = collinear(points, 1e-12) {
        let mut ts = Vec::with_capacity(points.len());
        let mut order = Vec::with_capacity(points.len());
        return collinear_center_with(points, weights, reference, base, u, &mut ts, &mut order);
    }
    let mut y = weighted_centroid(points, weights);
    let (_, certified) = weiszfeld_until(points, weights, &mut y, opts.tol, opts.max_iters);
    if certified {
        return y;
    }
    y = newton_polish(points, weights, y, opts);
    let mut best = y;
    let mut best_obj = weighted_sum_of_distances(points, weights, &y);
    for p in points {
        let obj = weighted_sum_of_distances(points, weights, p);
        if obj < best_obj {
            best_obj = obj;
            best = *p;
        }
    }
    best
}

/// Starting iterate of the cold path: the weighted centroid.
fn weighted_centroid<const N: usize>(points: &[Point<N>], weights: &[f64]) -> Point<N> {
    let total: f64 = weights.iter().sum();
    let mut acc = Point::origin();
    for (p, w) in points.iter().zip(weights) {
        acc += *p * *w;
    }
    acc / total
}

/// Weighted geometric median via the hybrid Weiszfeld/Newton scheme,
/// starting cold from the weighted centroid.
///
/// For collinear inputs the problem reduces to the exact 1-D weighted
/// median (computed directly — no iteration), with the non-unique case
/// resolved by clamping the projection of `reference` onto the minimizing
/// segment, implementing the paper's "closest center" tie-break.
///
/// # Panics
/// Panics on an empty point set or mismatched weight length.
pub fn weighted_center_weighted<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    reference: &Point<N>,
    opts: MedianOptions,
) -> Point<N> {
    assert!(!points.is_empty(), "center of empty request set");
    assert_eq!(points.len(), weights.len(), "length mismatch");

    if points.len() == 1 {
        return points[0];
    }

    // Collinear (always true on the line): exact 1-D solution + tie-break.
    if let Some((base, u)) = collinear(points, 1e-12) {
        let mut ts = Vec::with_capacity(points.len());
        let mut order = Vec::with_capacity(points.len());
        return collinear_center_with(points, weights, reference, base, u, &mut ts, &mut order);
    }

    // General position: unique minimizer.
    solve_from(points, weights, weighted_centroid(points, weights), opts).0
}

/// Damped Newton refinement of a Fermat–Weber iterate. Safeguarded: steps
/// are halved until the objective improves and the iterate never moves
/// while sitting within float-epsilon of an anchor, so the polish can only
/// improve on its input.
fn newton_polish<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    mut y: Point<N>,
    opts: MedianOptions,
) -> Point<N> {
    let scale = points.iter().map(|p| p.norm()).fold(1.0f64, f64::max);
    let total_weight: f64 = weights.iter().sum();
    let step_tol = opts.tol * (1.0 + scale);
    for _ in 0..60 {
        let Some((grad, hess)) = gradient_and_hessian(points, weights, &y, scale) else {
            // Sitting on an anchor: the smooth model does not apply.
            return y;
        };
        // Already stationary (the common warm-started case): skip the step
        // solve and the doomed backtracking objective evaluations.
        if grad.norm() <= 1e-12 * total_weight {
            return y;
        }
        let Some(step) = solve_linear(hess, grad) else {
            return y;
        };
        if Point(step).norm() <= step_tol {
            // The Newton model says we are within tolerance of the
            // stationary point; a shorter step cannot move us meaningfully.
            return y;
        }
        // Backtracking line search on the true objective.
        let base_obj = weighted_sum_of_distances(points, weights, &y);
        let mut lambda = 1.0;
        let mut moved = false;
        for _ in 0..12 {
            let candidate = y - Point(step) * lambda;
            if weighted_sum_of_distances(points, weights, &candidate) < base_obj {
                let shift = candidate.distance(&y);
                y = candidate;
                moved = true;
                if shift <= step_tol {
                    return y;
                }
                break;
            }
            lambda /= 2.0;
        }
        if !moved {
            // The objective can no longer *resolve* improvements (float
            // granularity ≈ ε·obj corresponds to a position error of about
            // √(ε·obj/λ), far above `opts.tol`). Finish with a short burst
            // of pure step-size-controlled Newton, which converges to
            // machine precision exactly where the line search goes blind.
            return pure_newton_finish(points, weights, y, scale, step_tol);
        }
    }
    y
}

/// Gradient `Σ w·(y−x)/d` and Hessian `Σ w·(I/d − ΔΔᵀ/d³)` of the
/// Fermat–Weber objective at `y`; `None` when `y` sits on an anchor.
#[allow(clippy::type_complexity)]
fn gradient_and_hessian<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    y: &Point<N>,
    scale: f64,
) -> Option<(Point<N>, [[f64; N]; N])> {
    let mut grad = Point::<N>::origin();
    let mut hess = [[0.0f64; N]; N];
    for (p, w) in points.iter().zip(weights) {
        let delta = *y - *p;
        let d = delta.norm();
        if d <= 1e-12 * scale {
            return None;
        }
        grad += delta * (w / d);
        let inv_d = w / d;
        let inv_d3 = w / (d * d * d);
        for i in 0..N {
            for j in 0..N {
                hess[i][j] -= delta[i] * delta[j] * inv_d3;
            }
            hess[i][i] += inv_d;
        }
    }
    Some((grad, hess))
}

/// A few undamped Newton steps with a shrinking-step divergence guard.
/// Only called once the damped phase is inside the quadratic basin; each
/// step squares the error, so three steps reach machine precision. Reverts
/// to the entry iterate if the steps grow instead of shrink.
fn pure_newton_finish<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    start: Point<N>,
    scale: f64,
    step_tol: f64,
) -> Point<N> {
    let mut y = start;
    let mut prev_norm = f64::INFINITY;
    for _ in 0..3 {
        let Some((grad, hess)) = gradient_and_hessian(points, weights, &y, scale) else {
            break;
        };
        let Some(step) = solve_linear(hess, grad) else {
            break;
        };
        let norm = Point(step).norm();
        if !norm.is_finite() || norm >= prev_norm {
            break;
        }
        y -= Point(step);
        prev_norm = norm;
        if norm <= step_tol {
            break;
        }
    }
    // Never hand back something worse than the damped phase produced
    // (within one float granule of its objective).
    let before = weighted_sum_of_distances(points, weights, &start);
    let after = weighted_sum_of_distances(points, weights, &y);
    if after <= before * (1.0 + 1e-12) {
        y
    } else {
        start
    }
}

/// Solves `A·x = b` for a small symmetric positive-definite `A` by Gaussian
/// elimination with partial pivoting; `None` when singular.
fn solve_linear<const N: usize>(mut a: [[f64; N]; N], b: Point<N>) -> Option<[f64; N]> {
    let mut x = b.0;
    for col in 0..N {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..N {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        x.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..N {
            let f = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            for (cell, pivot_cell) in lower[0][col..N].iter_mut().zip(&upper[col][col..N]) {
                *cell -= f * pivot_cell;
            }
            x[row] -= f * x[col];
        }
    }
    // Back-substitute.
    for col in (0..N).rev() {
        let dot: f64 = (col + 1..N).map(|k| a[col][k] * x[k]).sum();
        x[col] = (x[col] - dot) / a[col][col];
    }
    if x.iter().all(|v| v.is_finite()) {
        Some(x)
    } else {
        None
    }
}

/// The paper's center point `c` for a request set: the minimizer of
/// `Σ_i d(c, v_i)`, ties broken towards `reference` (the algorithm's server
/// position). Unweighted convenience wrapper over
/// [`weighted_center_weighted`].
pub fn weighted_center<const N: usize>(
    points: &[Point<N>],
    reference: &Point<N>,
    opts: MedianOptions,
) -> Point<N> {
    let w = vec![1.0; points.len()];
    weighted_center_weighted(points, &w, reference, opts)
}

/// Unweighted geometric median with default options and origin tie-break;
/// the common entry point when no server reference is relevant.
pub fn geometric_median<const N: usize>(points: &[Point<N>]) -> Point<N> {
    weighted_center(points, &Point::origin(), MedianOptions::default())
}

/// Iteration counters of a [`MedianSolver`], for perf diagnostics and the
/// benchmark suite. `iterations` counts Weiszfeld fixed-point steps (the
/// dominant O(n) kernel); Newton polish steps are not separately billed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MedianTelemetry {
    /// Number of center solves performed.
    pub solves: u64,
    /// Total Weiszfeld iterations across all solves.
    pub iterations: u64,
    /// Solves that started from a previous center instead of the centroid.
    pub warm_starts: u64,
    /// Weiszfeld iterations of the most recent solve.
    pub last_iterations: usize,
}

impl MedianTelemetry {
    /// Mean Weiszfeld iterations per solve (0 when nothing was solved).
    pub fn mean_iterations(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.iterations as f64 / self.solves as f64
        }
    }
}

/// A reusable, warm-starting geometric-median solver for per-step use in
/// simulations.
///
/// Request sets drift slowly between consecutive steps, so the previous
/// center is an excellent starting iterate: the coarse Weiszfeld phase
/// typically collapses from dozens of iterations to a handful. The solver
/// also owns scratch buffers for the collinear fast path and the implicit
/// unit-weight vector, making repeated solves allocation-free, and records
/// [`MedianTelemetry`].
///
/// Results match the cold [`weighted_center`] path to well within `1e-9`
/// (both phases finish with the same Newton polish, verification sweep and
/// input-point snap); they are *not* guaranteed bit-identical, because the
/// starting iterate differs.
#[derive(Clone, Debug)]
pub struct MedianSolver<const N: usize> {
    opts: MedianOptions,
    warm: Option<Point<N>>,
    ones: Vec<f64>,
    ts: Vec<f64>,
    order: Vec<usize>,
    /// Iteration counters; reset with [`MedianSolver::reset_telemetry`].
    pub telemetry: MedianTelemetry,
}

impl<const N: usize> Default for MedianSolver<N> {
    fn default() -> Self {
        Self::new(MedianOptions::default())
    }
}

impl<const N: usize> MedianSolver<N> {
    /// Solver with the given convergence options and no warm state.
    pub fn new(opts: MedianOptions) -> Self {
        MedianSolver {
            opts,
            warm: None,
            ones: Vec::new(),
            ts: Vec::new(),
            order: Vec::new(),
            telemetry: MedianTelemetry::default(),
        }
    }

    /// Clears the warm-start state (telemetry is preserved). Call between
    /// unrelated request streams — e.g. at simulator reset.
    pub fn reset(&mut self) {
        self.warm = None;
    }

    /// Replaces the convergence options for subsequent solves.
    pub fn set_options(&mut self, opts: MedianOptions) {
        self.opts = opts;
    }

    /// Clears the iteration counters.
    pub fn reset_telemetry(&mut self) {
        self.telemetry = MedianTelemetry::default();
    }

    /// Primes the warm-start iterate explicitly (e.g. from a neighboring
    /// δ-lane of a batched run whose server sits at almost the same spot).
    pub fn seed(&mut self, center: Point<N>) {
        self.warm = Some(center);
    }

    /// The warm-start iterate the next solve would use, if any.
    pub fn warm_state(&self) -> Option<Point<N>> {
        self.warm
    }

    /// Unweighted warm-started center: minimizer of `Σ_i d(c, v_i)`, ties
    /// broken towards `reference`. Allocation-free after warm-up.
    pub fn center(&mut self, points: &[Point<N>], reference: &Point<N>) -> Point<N> {
        let mut out = Point::origin();
        self.center_into(points, reference, &mut out);
        out
    }

    /// [`MedianSolver::center`] writing into `out` (the
    /// `weighted_center_into` shape for callers that manage storage).
    pub fn center_into(&mut self, points: &[Point<N>], reference: &Point<N>, out: &mut Point<N>) {
        if self.ones.len() < points.len() {
            self.ones.resize(points.len(), 1.0);
        }
        // Split borrows: hand `ones` to the weighted path without cloning.
        let ones = std::mem::take(&mut self.ones);
        self.weighted_center_into(points, &ones[..points.len()], reference, out);
        self.ones = ones;
    }

    /// Weighted warm-started center written into `out`; the weighted
    /// counterpart of [`MedianSolver::center_into`].
    ///
    /// # Panics
    /// Panics on an empty point set or mismatched weight length.
    pub fn weighted_center_into(
        &mut self,
        points: &[Point<N>],
        weights: &[f64],
        reference: &Point<N>,
        out: &mut Point<N>,
    ) {
        assert!(!points.is_empty(), "center of empty request set");
        assert_eq!(points.len(), weights.len(), "length mismatch");
        self.telemetry.solves += 1;

        if points.len() == 1 {
            self.telemetry.last_iterations = 0;
            self.warm = Some(points[0]);
            *out = points[0];
            return;
        }

        // Collinear: exact, iteration-free — nothing to warm-start.
        if let Some((base, u)) = collinear(points, 1e-12) {
            self.telemetry.last_iterations = 0;
            let c = collinear_center_with(
                points,
                weights,
                reference,
                base,
                u,
                &mut self.ts,
                &mut self.order,
            );
            self.warm = Some(c);
            *out = c;
            return;
        }

        let start = match self.warm {
            Some(prev) if prev.is_finite() => {
                self.telemetry.warm_starts += 1;
                prev
            }
            _ => weighted_centroid(points, weights),
        };
        let (c, iters) = solve_from(points, weights, start, self.opts);
        self.telemetry.iterations += iters as u64;
        self.telemetry.last_iterations = iters;
        self.warm = Some(c);
        *out = c;
    }
}

/// Verifies the subgradient optimality condition of a candidate median `c`:
/// the norm of `Σ_{x_i ≠ c} (c − x_i)/d_i` must not exceed the multiplicity
/// (weight) of points coinciding with `c`, within `tol`. Used by tests to
/// certify solver output without trusting the solver.
pub fn median_optimality_gap<const N: usize>(points: &[Point<N>], c: &Point<N>) -> f64 {
    let mut grad = Point::<N>::origin();
    let mut coincident = 0.0;
    for p in points {
        let d = p.distance(c);
        if d <= 1e-12 {
            coincident += 1.0;
        } else {
            grad += (*c - *p) / d;
        }
    }
    (grad.norm() - coincident).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{P1, P2};

    #[test]
    fn single_point_is_its_own_center() {
        let pts = [P2::xy(3.0, 4.0)];
        let c = weighted_center(&pts, &P2::origin(), MedianOptions::default());
        assert_eq!(c, pts[0]);
    }

    #[test]
    fn line_median_odd_is_middle() {
        let (lo, hi) = line_median_interval(&[5.0, 1.0, 3.0]);
        assert_eq!((lo, hi), (3.0, 3.0));
    }

    #[test]
    fn line_median_even_is_interval() {
        let (lo, hi) = line_median_interval(&[1.0, 2.0, 7.0, 9.0]);
        assert_eq!((lo, hi), (2.0, 7.0));
    }

    #[test]
    fn weighted_line_median_respects_weights() {
        // Weight 3 at x=0 vs weight 1 at x=10: median is 0.
        let (lo, hi) = weighted_line_median_interval(&[0.0, 10.0], &[3.0, 1.0]);
        assert_eq!((lo, hi), (0.0, 0.0));
    }

    #[test]
    fn weighted_line_median_exact_half_split() {
        let (lo, hi) = weighted_line_median_interval(&[0.0, 10.0], &[1.0, 1.0]);
        assert_eq!((lo, hi), (0.0, 10.0));
    }

    #[test]
    fn tie_break_picks_point_closest_to_reference() {
        // Even number of collinear requests: minimizers form [2, 7]·e_x.
        let pts = [
            P2::xy(1.0, 0.0),
            P2::xy(2.0, 0.0),
            P2::xy(7.0, 0.0),
            P2::xy(9.0, 0.0),
        ];
        // Reference inside the interval → center is its projection.
        let c = weighted_center(&pts, &P2::xy(5.0, 3.0), MedianOptions::default());
        assert!(c.distance(&P2::xy(5.0, 0.0)) < 1e-9);
        // Reference left of the interval → clamped to the left endpoint.
        let c = weighted_center(&pts, &P2::xy(-4.0, 0.0), MedianOptions::default());
        assert!(c.distance(&P2::xy(2.0, 0.0)) < 1e-9);
        // Reference right of the interval → clamped to the right endpoint.
        let c = weighted_center(&pts, &P2::xy(100.0, 1.0), MedianOptions::default());
        assert!(c.distance(&P2::xy(7.0, 0.0)) < 1e-9);
    }

    #[test]
    fn median_of_equilateral_triangle_is_fermat_point() {
        // For an equilateral triangle the geometric median is the centroid.
        let pts = [
            P2::xy(0.0, 0.0),
            P2::xy(1.0, 0.0),
            P2::xy(0.5, 3f64.sqrt() / 2.0),
        ];
        let c = geometric_median(&pts);
        let expected = centroid(&pts);
        assert!(c.distance(&expected) < 1e-8, "got {c:?}");
        assert!(median_optimality_gap(&pts, &c) < 1e-6);
    }

    #[test]
    fn median_with_obtuse_triangle_sits_on_vertex() {
        // When one vertex sees the others under ≥ 120°, the median is that
        // vertex. Extremely flat triangle: the middle point wins.
        let pts = [P2::xy(0.0, 0.0), P2::xy(1.0, 0.05), P2::xy(2.0, 0.0)];
        let c = geometric_median(&pts);
        assert!(c.distance(&pts[1]) < 1e-6, "got {c:?}");
        assert!(median_optimality_gap(&pts, &c) < 1e-6);
    }

    #[test]
    fn vardi_zhang_handles_duplicate_heavy_point() {
        // Three copies of one point vs two distinct others: the heavy point
        // dominates (weight 3 ≥ gradient norm of the rest ≤ 2).
        let pts = [
            P2::xy(1.0, 1.0),
            P2::xy(1.0, 1.0),
            P2::xy(1.0, 1.0),
            P2::xy(5.0, 1.0),
            P2::xy(1.0, 6.0),
        ];
        let c = geometric_median(&pts);
        assert!(c.distance(&P2::xy(1.0, 1.0)) < 1e-7, "got {c:?}");
    }

    #[test]
    fn median_beats_centroid_on_objective() {
        let pts = [
            P2::xy(0.0, 0.0),
            P2::xy(0.1, 0.0),
            P2::xy(0.0, 0.1),
            P2::xy(10.0, 10.0),
        ];
        let med = geometric_median(&pts);
        let cen = centroid(&pts);
        assert!(sum_of_distances(&pts, &med) <= sum_of_distances(&pts, &cen) + 1e-9);
    }

    #[test]
    fn one_dimensional_center_is_exact_median() {
        let pts = [P1::new([4.0]), P1::new([-1.0]), P1::new([10.0])];
        let c = weighted_center(&pts, &P1::origin(), MedianOptions::default());
        assert!((c.x() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_detection() {
        let on_line = [P2::xy(0.0, 0.0), P2::xy(1.0, 1.0), P2::xy(3.0, 3.0)];
        assert!(collinear(&on_line, 1e-12).is_some());
        let off_line = [P2::xy(0.0, 0.0), P2::xy(1.0, 1.0), P2::xy(3.0, 3.5)];
        assert!(collinear(&off_line, 1e-12).is_none());
    }

    #[test]
    fn all_identical_points_center() {
        let pts = [P2::xy(2.0, 2.0); 5];
        let c = weighted_center(&pts, &P2::origin(), MedianOptions::default());
        assert_eq!(c, P2::xy(2.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_center_panics() {
        let pts: [P2; 0] = [];
        let _ = weighted_center(&pts, &P2::origin(), MedianOptions::default());
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            P2::xy(0.0, 0.0),
            P2::xy(2.0, 0.0),
            P2::xy(2.0, 2.0),
            P2::xy(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), P2::xy(1.0, 1.0));
    }

    #[test]
    fn optimality_gap_flags_bad_candidate() {
        let pts = [P2::xy(0.0, 0.0), P2::xy(1.0, 0.0), P2::xy(0.5, 1.0)];
        assert!(median_optimality_gap(&pts, &P2::xy(50.0, 50.0)) > 0.5);
    }

    #[test]
    fn warm_solver_matches_cold_path_on_drift() {
        // A cluster drifting to the right: the warm solver must track the
        // cold path within 1e-9 at every step while spending fewer
        // iterations overall.
        let mut solver = MedianSolver::<2>::new(MedianOptions::default());
        let base = [
            P2::xy(0.0, 0.0),
            P2::xy(1.0, 0.3),
            P2::xy(0.4, 1.1),
            P2::xy(-0.6, 0.5),
            P2::xy(0.2, -0.8),
        ];
        let mut cold_iter_equiv = 0u64;
        for t in 0..200 {
            let shift = P2::xy(0.01 * t as f64, 0.005 * t as f64);
            let pts: Vec<P2> = base.iter().map(|p| *p + shift).collect();
            let reference = P2::origin();
            let warm = solver.center(&pts, &reference);
            let cold = weighted_center(&pts, &reference, MedianOptions::default());
            assert!(
                warm.distance(&cold) < 1e-9,
                "step {t}: warm {warm:?} vs cold {cold:?}"
            );
            cold_iter_equiv += 1;
        }
        assert_eq!(solver.telemetry.solves, cold_iter_equiv);
        assert!(solver.telemetry.warm_starts >= cold_iter_equiv - 1);
        assert!(solver.telemetry.mean_iterations() > 0.0);
    }

    #[test]
    fn solver_collinear_and_single_point_paths() {
        let mut solver = MedianSolver::<2>::new(MedianOptions::default());
        // Single point.
        assert_eq!(
            solver.center(&[P2::xy(2.0, 3.0)], &P2::origin()),
            P2::xy(2.0, 3.0)
        );
        assert_eq!(solver.telemetry.last_iterations, 0);
        // Collinear with tie-break.
        let pts = [P2::xy(0.0, 0.0), P2::xy(1.0, 0.0)];
        let c = solver.center(&pts, &P2::xy(0.25, 5.0));
        assert!(c.distance(&P2::xy(0.25, 0.0)) < 1e-12);
        // Warm state survives and reset clears it.
        assert!(solver.warm_state().is_some());
        solver.reset();
        assert!(solver.warm_state().is_none());
    }

    #[test]
    fn solver_seeding_controls_warm_start() {
        let pts = [
            P2::xy(0.0, 0.0),
            P2::xy(2.0, 0.1),
            P2::xy(1.0, 1.7),
            P2::xy(0.9, -1.2),
        ];
        let cold = weighted_center(&pts, &P2::origin(), MedianOptions::default());
        let mut solver = MedianSolver::<2>::new(MedianOptions::default());
        solver.seed(cold);
        let warm = solver.center(&pts, &P2::origin());
        assert!(warm.distance(&cold) < 1e-9);
        assert_eq!(solver.telemetry.warm_starts, 1);
        // Seeded from the exact optimum, the coarse phase exits immediately.
        assert!(solver.telemetry.last_iterations <= 4);
    }

    #[test]
    fn weighted_solver_into_matches_free_function() {
        let pts = [
            P2::xy(0.0, 0.0),
            P2::xy(3.0, 0.5),
            P2::xy(1.0, 2.5),
            P2::xy(-1.0, 1.0),
        ];
        let w = [1.0, 2.0, 0.5, 1.5];
        let cold = weighted_center_weighted(&pts, &w, &P2::origin(), MedianOptions::default());
        let mut solver = MedianSolver::<2>::new(MedianOptions::default());
        let mut out = P2::origin();
        solver.weighted_center_into(&pts, &w, &P2::origin(), &mut out);
        assert!(out.distance(&cold) < 1e-9);
        // And again warm: result stable.
        solver.weighted_center_into(&pts, &w, &P2::origin(), &mut out);
        assert!(out.distance(&cold) < 1e-9);
    }
}
