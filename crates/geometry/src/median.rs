//! Centers of request sets: 1-D medians and the geometric median.
//!
//! The Move-to-Center algorithm of the paper targets, in each step, the
//! point `c` minimizing `Σ_i d(c, v_i)` over the current requests
//! `v_1..v_r` — the *geometric median* (Fermat–Weber point). The paper's
//! tie-breaking rule is explicit: "If `c` is not unique, pick the one
//! minimizing `d(P_Alg, c)`". Non-uniqueness occurs exactly when the
//! requests are collinear with an even multiset split, in which case the
//! minimizer set is a segment; we then return the point of the segment
//! closest to the reference position, as required.
//!
//! For points in general position we run the Weiszfeld fixed-point
//! iteration with the Vardi–Zhang correction, which remains convergent when
//! an iterate lands exactly on an input point (plain Weiszfeld divides by
//! zero there).

use crate::point::Point;

/// Convergence knobs for the geometric-median iteration.
#[derive(Clone, Copy, Debug)]
pub struct MedianOptions {
    /// Maximum number of Weiszfeld/Vardi–Zhang iterations.
    pub max_iters: usize,
    /// Stop when consecutive iterates are closer than this.
    pub tol: f64,
}

impl Default for MedianOptions {
    fn default() -> Self {
        MedianOptions {
            max_iters: 128,
            tol: 1e-13,
        }
    }
}

/// Sum of Euclidean distances from `c` to every point — the objective the
/// geometric median minimizes, and the per-step service cost of the model.
pub fn sum_of_distances<const N: usize>(points: &[Point<N>], c: &Point<N>) -> f64 {
    points.iter().map(|p| p.distance(c)).sum()
}

/// Weighted variant of [`sum_of_distances`].
pub fn weighted_sum_of_distances<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    c: &Point<N>,
) -> f64 {
    points
        .iter()
        .zip(weights)
        .map(|(p, w)| w * p.distance(c))
        .sum()
}

/// Arithmetic mean of the points. Minimizes the sum of *squared* distances;
/// used as the Weiszfeld starting iterate and as an ablation target (A2).
///
/// # Panics
/// Panics on an empty slice — a centroid of nothing is undefined.
pub fn centroid<const N: usize>(points: &[Point<N>]) -> Point<N> {
    assert!(!points.is_empty(), "centroid of empty point set");
    let mut acc = Point::origin();
    for p in points {
        acc += *p;
    }
    acc / points.len() as f64
}

/// The closed interval of minimizers of `t ↦ Σ_i w_i·|t − x_i|` on the line.
///
/// With total weight `W`, the minimizer set is `[lo, hi]` where `lo` is the
/// smallest `x` with prefix weight `≥ W/2` and `hi` the smallest `x` with
/// prefix weight `> W/2` (collapsing to a single point unless the weight
/// splits exactly in half at a gap). Returns `(lo, hi)`.
///
/// # Panics
/// Panics when `values` is empty or lengths mismatch.
pub fn weighted_line_median_interval(values: &[f64], weights: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "median of empty set");
    assert_eq!(values.len(), weights.len(), "length mismatch");
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    let half = total / 2.0;

    let mut prefix = 0.0;
    let mut lo = values[idx[0]];
    let mut hi = values[idx[idx.len() - 1]];
    for (k, &i) in idx.iter().enumerate() {
        prefix += weights[i];
        if prefix >= half - 1e-15 * total {
            lo = values[i];
            // If the prefix weight hits exactly half, the flat stretch of the
            // objective extends to the next distinct value; otherwise the
            // minimizer is unique.
            if (prefix - half).abs() <= 1e-12 * total && k + 1 < idx.len() {
                hi = values[idx[k + 1]];
            } else {
                hi = values[i];
            }
            break;
        }
    }
    (lo, hi)
}

/// Unweighted median interval on the line: `[x_(k), x_(k+1)]` for `2k`
/// points, the middle order statistic for an odd count.
pub fn line_median_interval(values: &[f64]) -> (f64, f64) {
    let w = vec![1.0; values.len()];
    weighted_line_median_interval(values, &w)
}

/// Detects whether all points lie on a common line (within `tol`).
///
/// Returns `Some((base, unit_direction))` when collinear — including the
/// degenerate all-equal case, where the direction is arbitrary — and `None`
/// otherwise. Collinearity is the only situation in which the geometric
/// median can be non-unique, so [`weighted_center`] uses this to apply the
/// paper's tie-breaking rule exactly.
pub fn collinear<const N: usize>(points: &[Point<N>], tol: f64) -> Option<(Point<N>, Point<N>)> {
    let base = points[0];
    // Find the farthest point from the base to define a stable direction.
    let mut dir = Point::origin();
    let mut best = 0.0;
    for p in points {
        let d = (*p - base).norm();
        if d > best {
            best = d;
            dir = *p - base;
        }
    }
    let Some(u) = dir.normalized() else {
        // All points coincide with the base.
        let mut e = Point::origin();
        e[0] = 1.0;
        return Some((base, e));
    };
    let scale = best.max(1.0);
    for p in points {
        let v = *p - base;
        let along = v.dot(&u);
        let off = (v - u * along).norm();
        if off > tol * scale {
            return None;
        }
    }
    Some((base, u))
}

/// Weighted geometric median via Weiszfeld iteration with the Vardi–Zhang
/// correction, starting from the weighted centroid.
///
/// For collinear inputs the problem reduces to the exact 1-D weighted
/// median (computed directly — no iteration), with the non-unique case
/// resolved by clamping the projection of `reference` onto the minimizing
/// segment, implementing the paper's "closest center" tie-break.
///
/// # Panics
/// Panics on an empty point set or mismatched weight length.
pub fn weighted_center_weighted<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    reference: &Point<N>,
    opts: MedianOptions,
) -> Point<N> {
    assert!(!points.is_empty(), "center of empty request set");
    assert_eq!(points.len(), weights.len(), "length mismatch");

    if points.len() == 1 {
        return points[0];
    }

    // Collinear (always true on the line): exact 1-D solution + tie-break.
    if let Some((base, u)) = collinear(points, 1e-12) {
        let ts: Vec<f64> = points.iter().map(|p| (*p - base).dot(&u)).collect();
        let (lo, hi) = weighted_line_median_interval(&ts, weights);
        let t_ref = (*reference - base).dot(&u);
        let t = t_ref.clamp(lo, hi);
        return base + u * t;
    }

    // General position: unique minimizer; Vardi–Zhang-corrected Weiszfeld.
    let mut y = {
        let total: f64 = weights.iter().sum();
        let mut acc = Point::origin();
        for (p, w) in points.iter().zip(weights) {
            acc += *p * *w;
        }
        acc / total
    };

    for _ in 0..opts.max_iters {
        // Split the points into those coinciding with the iterate and the
        // rest; accumulate the Weiszfeld weights over the rest.
        let mut num = Point::<N>::origin();
        let mut denom = 0.0;
        let mut coincident_weight = 0.0;
        let mut r_vec = Point::<N>::origin(); // Σ w_i (x_i − y)/d_i over non-coincident
        for (p, w) in points.iter().zip(weights) {
            let d = p.distance(&y);
            if d <= 1e-14 {
                coincident_weight += *w;
            } else {
                num += *p * (*w / d);
                denom += *w / d;
                r_vec += (*p - y) * (*w / d);
            }
        }
        if denom == 0.0 {
            // Every point coincides with the iterate.
            return y;
        }
        let t = num / denom; // plain Weiszfeld target
        let next = if coincident_weight > 0.0 {
            let r_norm = r_vec.norm();
            if r_norm <= coincident_weight {
                // The coincident point is the median (subgradient condition).
                return y;
            }
            // Vardi–Zhang: damped step that escapes the anchor point.
            let beta = (coincident_weight / r_norm).min(1.0);
            t * (1.0 - beta) + y * beta
        } else {
            t
        };
        let shift = next.distance(&y);
        y = next;
        if shift <= opts.tol {
            break;
        }
    }

    // Weiszfeld's fixed-point iteration converges sublinearly along flat
    // valleys (e.g. two tight clusters); polish with damped Newton steps —
    // the objective is smooth and strictly convex away from the anchors,
    // so Newton converges quadratically where Weiszfeld crawls.
    y = newton_polish(points, weights, y, opts);

    // The optimum may sit exactly on an input point, where the smooth
    // machinery stalls; snap to whichever candidate — the iterate or an
    // input — actually minimizes the objective. This also guarantees the
    // returned center never loses to a request point.
    let mut best = y;
    let mut best_obj = weighted_sum_of_distances(points, weights, &y);
    for p in points {
        let obj = weighted_sum_of_distances(points, weights, p);
        if obj < best_obj {
            best_obj = obj;
            best = *p;
        }
    }
    best
}

/// Damped Newton refinement of a Fermat–Weber iterate. Safeguarded: steps
/// are halved until the objective improves and the iterate never moves
/// while sitting within float-epsilon of an anchor, so the polish can only
/// improve on its input.
fn newton_polish<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    mut y: Point<N>,
    opts: MedianOptions,
) -> Point<N> {
    let scale = points
        .iter()
        .map(|p| p.norm())
        .fold(1.0f64, f64::max);
    for _ in 0..60 {
        // Gradient Σ w·(y−x)/d and Hessian Σ w·(I/d − ΔΔᵀ/d³).
        let mut grad = Point::<N>::origin();
        let mut hess = [[0.0f64; N]; N];
        let mut near_anchor = false;
        for (p, w) in points.iter().zip(weights) {
            let delta = y - *p;
            let d = delta.norm();
            if d <= 1e-12 * scale {
                near_anchor = true;
                break;
            }
            grad += delta * (w / d);
            let inv_d = w / d;
            let inv_d3 = w / (d * d * d);
            for i in 0..N {
                for j in 0..N {
                    hess[i][j] -= delta[i] * delta[j] * inv_d3;
                }
                hess[i][i] += inv_d;
            }
        }
        if near_anchor {
            break;
        }
        let Some(step) = solve_linear(hess, grad) else {
            break;
        };
        // Backtracking line search on the true objective.
        let base_obj = weighted_sum_of_distances(points, weights, &y);
        let mut lambda = 1.0;
        let mut moved = false;
        for _ in 0..12 {
            let candidate = y - Point(step) * lambda;
            if weighted_sum_of_distances(points, weights, &candidate) < base_obj {
                let shift = candidate.distance(&y);
                y = candidate;
                moved = true;
                if shift <= opts.tol * (1.0 + scale) {
                    return y;
                }
                break;
            }
            lambda /= 2.0;
        }
        if !moved {
            break;
        }
    }
    y
}

/// Solves `A·x = b` for a small symmetric positive-definite `A` by Gaussian
/// elimination with partial pivoting; `None` when singular.
fn solve_linear<const N: usize>(mut a: [[f64; N]; N], b: Point<N>) -> Option<[f64; N]> {
    let mut x = b.0;
    for col in 0..N {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..N {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        x.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..N {
            let f = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            for (cell, pivot_cell) in lower[0][col..N].iter_mut().zip(&upper[col][col..N]) {
                *cell -= f * pivot_cell;
            }
            x[row] -= f * x[col];
        }
    }
    // Back-substitute.
    for col in (0..N).rev() {
        let dot: f64 = (col + 1..N).map(|k| a[col][k] * x[k]).sum();
        x[col] = (x[col] - dot) / a[col][col];
    }
    if x.iter().all(|v| v.is_finite()) {
        Some(x)
    } else {
        None
    }
}

/// The paper's center point `c` for a request set: the minimizer of
/// `Σ_i d(c, v_i)`, ties broken towards `reference` (the algorithm's server
/// position). Unweighted convenience wrapper over
/// [`weighted_center_weighted`].
pub fn weighted_center<const N: usize>(
    points: &[Point<N>],
    reference: &Point<N>,
    opts: MedianOptions,
) -> Point<N> {
    let w = vec![1.0; points.len()];
    weighted_center_weighted(points, &w, reference, opts)
}

/// Unweighted geometric median with default options and origin tie-break;
/// the common entry point when no server reference is relevant.
pub fn geometric_median<const N: usize>(points: &[Point<N>]) -> Point<N> {
    weighted_center(points, &Point::origin(), MedianOptions::default())
}

/// Verifies the subgradient optimality condition of a candidate median `c`:
/// the norm of `Σ_{x_i ≠ c} (c − x_i)/d_i` must not exceed the multiplicity
/// (weight) of points coinciding with `c`, within `tol`. Used by tests to
/// certify solver output without trusting the solver.
pub fn median_optimality_gap<const N: usize>(points: &[Point<N>], c: &Point<N>) -> f64 {
    let mut grad = Point::<N>::origin();
    let mut coincident = 0.0;
    for p in points {
        let d = p.distance(c);
        if d <= 1e-12 {
            coincident += 1.0;
        } else {
            grad += (*c - *p) / d;
        }
    }
    (grad.norm() - coincident).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{P1, P2};

    #[test]
    fn single_point_is_its_own_center() {
        let pts = [P2::xy(3.0, 4.0)];
        let c = weighted_center(&pts, &P2::origin(), MedianOptions::default());
        assert_eq!(c, pts[0]);
    }

    #[test]
    fn line_median_odd_is_middle() {
        let (lo, hi) = line_median_interval(&[5.0, 1.0, 3.0]);
        assert_eq!((lo, hi), (3.0, 3.0));
    }

    #[test]
    fn line_median_even_is_interval() {
        let (lo, hi) = line_median_interval(&[1.0, 2.0, 7.0, 9.0]);
        assert_eq!((lo, hi), (2.0, 7.0));
    }

    #[test]
    fn weighted_line_median_respects_weights() {
        // Weight 3 at x=0 vs weight 1 at x=10: median is 0.
        let (lo, hi) = weighted_line_median_interval(&[0.0, 10.0], &[3.0, 1.0]);
        assert_eq!((lo, hi), (0.0, 0.0));
    }

    #[test]
    fn weighted_line_median_exact_half_split() {
        let (lo, hi) = weighted_line_median_interval(&[0.0, 10.0], &[1.0, 1.0]);
        assert_eq!((lo, hi), (0.0, 10.0));
    }

    #[test]
    fn tie_break_picks_point_closest_to_reference() {
        // Even number of collinear requests: minimizers form [2, 7]·e_x.
        let pts = [
            P2::xy(1.0, 0.0),
            P2::xy(2.0, 0.0),
            P2::xy(7.0, 0.0),
            P2::xy(9.0, 0.0),
        ];
        // Reference inside the interval → center is its projection.
        let c = weighted_center(&pts, &P2::xy(5.0, 3.0), MedianOptions::default());
        assert!(c.distance(&P2::xy(5.0, 0.0)) < 1e-9);
        // Reference left of the interval → clamped to the left endpoint.
        let c = weighted_center(&pts, &P2::xy(-4.0, 0.0), MedianOptions::default());
        assert!(c.distance(&P2::xy(2.0, 0.0)) < 1e-9);
        // Reference right of the interval → clamped to the right endpoint.
        let c = weighted_center(&pts, &P2::xy(100.0, 1.0), MedianOptions::default());
        assert!(c.distance(&P2::xy(7.0, 0.0)) < 1e-9);
    }

    #[test]
    fn median_of_equilateral_triangle_is_fermat_point() {
        // For an equilateral triangle the geometric median is the centroid.
        let pts = [
            P2::xy(0.0, 0.0),
            P2::xy(1.0, 0.0),
            P2::xy(0.5, 3f64.sqrt() / 2.0),
        ];
        let c = geometric_median(&pts);
        let expected = centroid(&pts);
        assert!(c.distance(&expected) < 1e-8, "got {c:?}");
        assert!(median_optimality_gap(&pts, &c) < 1e-6);
    }

    #[test]
    fn median_with_obtuse_triangle_sits_on_vertex() {
        // When one vertex sees the others under ≥ 120°, the median is that
        // vertex. Extremely flat triangle: the middle point wins.
        let pts = [P2::xy(0.0, 0.0), P2::xy(1.0, 0.05), P2::xy(2.0, 0.0)];
        let c = geometric_median(&pts);
        assert!(c.distance(&pts[1]) < 1e-6, "got {c:?}");
        assert!(median_optimality_gap(&pts, &c) < 1e-6);
    }

    #[test]
    fn vardi_zhang_handles_duplicate_heavy_point() {
        // Three copies of one point vs two distinct others: the heavy point
        // dominates (weight 3 ≥ gradient norm of the rest ≤ 2).
        let pts = [
            P2::xy(1.0, 1.0),
            P2::xy(1.0, 1.0),
            P2::xy(1.0, 1.0),
            P2::xy(5.0, 1.0),
            P2::xy(1.0, 6.0),
        ];
        let c = geometric_median(&pts);
        assert!(c.distance(&P2::xy(1.0, 1.0)) < 1e-7, "got {c:?}");
    }

    #[test]
    fn median_beats_centroid_on_objective() {
        let pts = [
            P2::xy(0.0, 0.0),
            P2::xy(0.1, 0.0),
            P2::xy(0.0, 0.1),
            P2::xy(10.0, 10.0),
        ];
        let med = geometric_median(&pts);
        let cen = centroid(&pts);
        assert!(sum_of_distances(&pts, &med) <= sum_of_distances(&pts, &cen) + 1e-9);
    }

    #[test]
    fn one_dimensional_center_is_exact_median() {
        let pts = [P1::new([4.0]), P1::new([-1.0]), P1::new([10.0])];
        let c = weighted_center(&pts, &P1::origin(), MedianOptions::default());
        assert!((c.x() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_detection() {
        let on_line = [P2::xy(0.0, 0.0), P2::xy(1.0, 1.0), P2::xy(3.0, 3.0)];
        assert!(collinear(&on_line, 1e-12).is_some());
        let off_line = [P2::xy(0.0, 0.0), P2::xy(1.0, 1.0), P2::xy(3.0, 3.5)];
        assert!(collinear(&off_line, 1e-12).is_none());
    }

    #[test]
    fn all_identical_points_center() {
        let pts = [P2::xy(2.0, 2.0); 5];
        let c = weighted_center(&pts, &P2::origin(), MedianOptions::default());
        assert_eq!(c, P2::xy(2.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_center_panics() {
        let pts: [P2; 0] = [];
        let _ = weighted_center(&pts, &P2::origin(), MedianOptions::default());
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            P2::xy(0.0, 0.0),
            P2::xy(2.0, 0.0),
            P2::xy(2.0, 2.0),
            P2::xy(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), P2::xy(1.0, 1.0));
    }

    #[test]
    fn optimality_gap_flags_bad_candidate() {
        let pts = [P2::xy(0.0, 0.0), P2::xy(1.0, 0.0), P2::xy(0.5, 1.0)];
        assert!(median_optimality_gap(&pts, &P2::xy(50.0, 50.0)) > 0.5);
    }
}
