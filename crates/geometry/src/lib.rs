#![warn(missing_docs)]

//! Euclidean-space substrate for the Mobile Server Problem.
//!
//! The paper places a mobile server in the Euclidean space of arbitrary
//! dimension; requests are points, the server moves under a per-step
//! distance budget, and the Move-to-Center algorithm repeatedly targets the
//! point minimizing the sum of distances to the current requests (the
//! *1-median* / geometric median). This crate provides:
//!
//! * [`Point`] — a fixed-dimension Euclidean point with vector arithmetic,
//!   plus the aliases [`P1`], [`P2`], [`P3`].
//! * [`median`] — exact 1-D medians and the geometric median in arbitrary
//!   dimension (hybrid Weiszfeld/Newton with Vardi–Zhang singular
//!   handling), including the paper's tie-breaking rule ("pick the center
//!   closest to the algorithm's server") and the warm-starting,
//!   allocation-free [`MedianSolver`] used by simulation hot loops.
//! * [`bbox`] — axis-aligned bounding boxes.
//! * [`kdtree`] — a KD-tree for nearest-neighbour queries over request
//!   clouds (used by workload generators and diagnostics).
//! * [`sample`] — deterministic, seedable random sampling of points.
//! * [`motion`] — bounded-step motion helpers (`step_towards`), the core
//!   primitive for any speed-limited server.
//! * [`soa`] — chunked, autovectorization-friendly distance kernels and
//!   the structure-of-arrays point buffer behind every sum-of-distances
//!   hot path (service pricing, Weiszfeld accumulators, grid-DP scans).

pub mod bbox;
pub mod kdtree;
pub mod median;
pub mod motion;
pub mod point;
pub mod sample;
pub mod soa;

pub use bbox::Aabb;
pub use median::{
    centroid, geometric_median, line_median_interval, weighted_center, MedianOptions, MedianSolver,
    MedianTelemetry,
};
pub use motion::step_towards;
pub use point::{DynPoint, Point, P1, P2, P3};
pub use soa::SoaPoints;

/// Numerical tolerance used across the workspace when comparing distances
/// and costs produced by floating-point computations.
pub const EPS: f64 = 1e-9;

/// Compares two floats for approximate equality with the workspace-wide
/// absolute/relative tolerance. Used by tests and solver convergence checks.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}
