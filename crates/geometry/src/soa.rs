//! Chunked, autovectorization-friendly distance kernels and a
//! structure-of-arrays point buffer.
//!
//! Every hot path of the reproduction — pricing a server position against
//! a request set, the Weiszfeld accumulators of the geometric-median
//! solve, and the per-node service scan of the offline grid DP — reduces
//! to sums of `sqrt(Σ_i (a_i − b_i)²)` over point sets. The scalar loops
//! serialize on the `sqrt` latency chain; the kernels here compute
//! squared distances into fixed-width blocks ([`LANES`] wide) so the
//! compiler can emit SIMD subtract/multiply/`sqrtpd` over whole blocks,
//! then reduce the block through one of two accumulation disciplines:
//!
//! * **in-order** (single accumulator, element order): bit-identical to
//!   the scalar loop it replaces. Used inside the median solver so warm
//!   starts, parity pins, and recorded traces stay byte-stable.
//! * **multi-accumulator** (4 independent partial sums): breaks the
//!   serial add chain for additional throughput, at the cost of a
//!   different (still deterministic) rounding association. Used where no
//!   cross-path bit-equality is required, e.g. [`sum_distances_points`]
//!   behind `msp_core::cost::service_cost`.
//!
//! Each chunked kernel keeps its scalar counterpart (`*_scalar`) public
//! as the parity oracle; proptests pin chunked against scalar with
//! explicit tolerance (exact equality for the in-order kernels).
//!
//! [`SoaPoints`] is a reusable structure-of-arrays buffer: one contiguous
//! `Vec<f64>` per axis. Scans that iterate *many points against one
//! query* (the grid DP's service scan over up to 200k nodes) vectorize
//! fully over the contiguous columns, which the array-of-structs layout
//! cannot offer once `N > 1`.

use crate::point::Point;

/// Block width of the chunked kernels. Eight doubles cover an AVX-512
/// register and two AVX ones; on plain SSE2 the compiler still fuses the
/// block into four 2-wide operations.
pub const LANES: usize = 8;

/// Number of independent partial sums in the multi-accumulator kernels.
const ACCS: usize = 4;

/// Squared distances from one block of `LANES` points to `c`.
#[inline(always)]
fn block_dist_sq<const N: usize>(block: &[Point<N>], c: &Point<N>) -> [f64; LANES] {
    let mut d2 = [0.0f64; LANES];
    for (l, p) in block.iter().enumerate() {
        let mut s = 0.0;
        for i in 0..N {
            let t = p.0[i] - c.0[i];
            s += t * t;
        }
        d2[l] = s;
    }
    d2
}

/// `sqrt` of a whole block — the vectorizable part the scalar loops
/// serialize on.
#[inline(always)]
fn block_sqrt(d2: &[f64; LANES]) -> [f64; LANES] {
    let mut d = [0.0f64; LANES];
    for (o, v) in d.iter_mut().zip(d2) {
        *o = v.sqrt();
    }
    d
}

/// Chunked sum of Euclidean distances from every point to `c`
/// (multi-accumulator; association differs from the scalar loop by at
/// most the usual f64 reordering error).
pub fn sum_distances_points<const N: usize>(points: &[Point<N>], c: &Point<N>) -> f64 {
    let mut acc = [0.0f64; ACCS];
    let mut it = points.chunks_exact(LANES);
    for block in it.by_ref() {
        let d = block_sqrt(&block_dist_sq(block, c));
        for (l, v) in d.iter().enumerate() {
            acc[l % ACCS] += v;
        }
    }
    let mut tail = 0.0;
    for p in it.remainder() {
        tail += p.distance(c);
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Scalar oracle for [`sum_distances_points`]: the plain left-to-right
/// loop the chunked kernel replaced.
pub fn sum_distances_points_scalar<const N: usize>(points: &[Point<N>], c: &Point<N>) -> f64 {
    points.iter().map(|p| p.distance(c)).sum()
}

/// Chunked weighted sum of distances, **in-order** accumulation:
/// bit-identical to [`weighted_sum_distances_points_scalar`] (the block
/// only batches the `sqrt`s; the weighted adds happen in element order).
pub fn weighted_sum_distances_points<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    c: &Point<N>,
) -> f64 {
    debug_assert_eq!(points.len(), weights.len());
    let mut sum = 0.0;
    let mut base = 0usize;
    let mut it = points.chunks_exact(LANES);
    for block in it.by_ref() {
        let d = block_sqrt(&block_dist_sq(block, c));
        for (l, v) in d.iter().enumerate() {
            sum += weights[base + l] * v;
        }
        base += LANES;
    }
    for (p, w) in it.remainder().iter().zip(&weights[base..]) {
        sum += w * p.distance(c);
    }
    sum
}

/// Scalar oracle for [`weighted_sum_distances_points`].
pub fn weighted_sum_distances_points_scalar<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    c: &Point<N>,
) -> f64 {
    points
        .iter()
        .zip(weights)
        .map(|(p, w)| w * p.distance(c))
        .sum()
}

/// One pass of Weiszfeld/Vardi–Zhang accumulation over a point set, as
/// produced by [`weiszfeld_accumulate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeiszfeldAccum<const N: usize> {
    /// `Σ_{d_i > ε} w_i·x_i/d_i` — the Weiszfeld numerator.
    pub num: Point<N>,
    /// `Σ_{d_i > ε} w_i/d_i` — the Weiszfeld denominator.
    pub denom: f64,
    /// Total weight of points coinciding with the iterate (`d_i ≤ ε`).
    pub coincident_weight: f64,
    /// `Σ_{d_i > ε} w_i·(x_i − y)/d_i` — the Vardi–Zhang residual vector.
    pub r_vec: Point<N>,
}

#[inline(always)]
fn weiszfeld_one<const N: usize>(
    acc: &mut WeiszfeldAccum<N>,
    p: &Point<N>,
    w: f64,
    d: f64,
    y: &Point<N>,
    eps: f64,
) {
    if d <= eps {
        acc.coincident_weight += w;
    } else {
        let inv = w / d;
        acc.num += *p * inv;
        acc.denom += inv;
        acc.r_vec += (*p - *y) * inv;
    }
}

/// Chunked Weiszfeld accumulator pass: distances are computed a block at
/// a time (vectorized `sqrt`), the accumulators are updated **in element
/// order**, so the result is bit-identical to
/// [`weiszfeld_accumulate_scalar`]. This is the inner O(n) kernel of
/// every geometric-median iteration.
pub fn weiszfeld_accumulate<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    y: &Point<N>,
    eps: f64,
) -> WeiszfeldAccum<N> {
    debug_assert_eq!(points.len(), weights.len());
    let mut acc = WeiszfeldAccum {
        num: Point::origin(),
        denom: 0.0,
        coincident_weight: 0.0,
        r_vec: Point::origin(),
    };
    let mut base = 0usize;
    let mut it = points.chunks_exact(LANES);
    for block in it.by_ref() {
        let d = block_sqrt(&block_dist_sq(block, y));
        let wblock = &weights[base..base + LANES];
        // Batch the reciprocal weights too: the divisions vectorize like
        // the sqrts (a coincident point yields an unused ±∞, harmless).
        let mut inv = [0.0f64; LANES];
        for ((o, w), dv) in inv.iter_mut().zip(wblock).zip(&d) {
            *o = w / dv;
        }
        for (l, p) in block.iter().enumerate() {
            if d[l] <= eps {
                acc.coincident_weight += wblock[l];
            } else {
                acc.num += *p * inv[l];
                acc.denom += inv[l];
                acc.r_vec += (*p - *y) * inv[l];
            }
        }
        base += LANES;
    }
    for (p, w) in it.remainder().iter().zip(&weights[base..]) {
        weiszfeld_one(&mut acc, p, *w, p.distance(y), y, eps);
    }
    acc
}

/// Scalar oracle for [`weiszfeld_accumulate`]: the verbatim loop the
/// chunked kernel replaced inside the median solver.
pub fn weiszfeld_accumulate_scalar<const N: usize>(
    points: &[Point<N>],
    weights: &[f64],
    y: &Point<N>,
    eps: f64,
) -> WeiszfeldAccum<N> {
    let mut acc = WeiszfeldAccum {
        num: Point::origin(),
        denom: 0.0,
        coincident_weight: 0.0,
        r_vec: Point::origin(),
    };
    for (p, w) in points.iter().zip(weights) {
        let d = p.distance(y);
        if d <= eps {
            acc.coincident_weight += *w;
        } else {
            acc.num += *p * (*w / d);
            acc.denom += *w / d;
            acc.r_vec += (*p - *y) * (*w / d);
        }
    }
    acc
}

/// Index and distance of the point nearest to `c` (squared-distance scan,
/// chunked). Ties resolve to the **smallest** index, matching the scalar
/// `Iterator::min_by` discipline the solver used before (`min_by` returns
/// the first of equally minimal elements). `None` on an empty set.
pub fn nearest_index_points<const N: usize>(
    points: &[Point<N>],
    c: &Point<N>,
) -> Option<(usize, f64)> {
    if points.is_empty() {
        return None;
    }
    let mut best = f64::INFINITY;
    let mut idx = 0usize;
    let mut base = 0usize;
    let mut it = points.chunks_exact(LANES);
    for block in it.by_ref() {
        let d2 = block_dist_sq(block, c);
        for (l, v) in d2.iter().enumerate() {
            if *v < best {
                best = *v;
                idx = base + l;
            }
        }
        base += LANES;
    }
    for (l, p) in it.remainder().iter().enumerate() {
        let v = p.distance_sq(c);
        if v < best {
            best = v;
            idx = base + l;
        }
    }
    Some((idx, best.sqrt()))
}

/// A reusable structure-of-arrays buffer of `N`-dimensional points: one
/// contiguous coordinate column per axis.
///
/// Built once (or [`SoaPoints::assign`]ed repeatedly without
/// reallocating) and scanned many times — the layout the grid DP uses for
/// its per-step service scan over every node, where the query point is
/// fixed and the point set is large.
#[derive(Clone, Debug)]
pub struct SoaPoints<const N: usize> {
    len: usize,
    coords: [Vec<f64>; N],
}

impl<const N: usize> Default for SoaPoints<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> SoaPoints<N> {
    /// An empty buffer.
    pub fn new() -> Self {
        SoaPoints {
            len: 0,
            coords: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Builds the buffer from an array-of-structs slice.
    pub fn from_points(points: &[Point<N>]) -> Self {
        let mut s = Self::new();
        s.assign(points);
        s
    }

    /// Replaces the contents with `points`, reusing the column
    /// allocations (allocation-free once capacity is reached).
    pub fn assign(&mut self, points: &[Point<N>]) {
        for col in &mut self.coords {
            col.clear();
        }
        for p in points {
            for (i, col) in self.coords.iter_mut().enumerate() {
                col.push(p.0[i]);
            }
        }
        self.len = points.len();
    }

    /// Appends one point.
    pub fn push(&mut self, p: &Point<N>) {
        for (i, col) in self.coords.iter_mut().enumerate() {
            col.push(p.0[i]);
        }
        self.len += 1;
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reconstructs point `i` (bounds-checked), for tests and diagnostics.
    pub fn get(&self, i: usize) -> Point<N> {
        let mut out = Point::origin();
        for (axis, col) in self.coords.iter().enumerate() {
            out.0[axis] = col[i];
        }
        out
    }

    /// Squared distances from every stored point to `c`, written over
    /// `out[k]` (the chunk-friendly inner loop runs over the contiguous
    /// columns).
    ///
    /// # Panics
    /// Panics when `out.len() != self.len()`.
    pub fn distances_sq_into(&self, c: &Point<N>, out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        out.fill(0.0);
        for (axis, col) in self.coords.iter().enumerate() {
            let ci = c.0[axis];
            for (o, v) in out.iter_mut().zip(col) {
                let t = v - ci;
                *o += t * t;
            }
        }
    }

    /// Adds `d(point_k, c)` onto `out[k]` for every stored point — the
    /// service-scan kernel of the grid DP: calling it once per request
    /// accumulates, in request order, exactly the per-node service cost
    /// the scalar per-node loop produces (bit-identical per node).
    ///
    /// # Panics
    /// Panics when `out.len() != self.len()`.
    pub fn add_distances(&self, c: &Point<N>, out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        let blocks = self.len / LANES;
        for b in 0..blocks {
            let base = b * LANES;
            let mut d2 = [0.0f64; LANES];
            for (axis, col) in self.coords.iter().enumerate() {
                let ci = c.0[axis];
                for (acc, v) in d2.iter_mut().zip(&col[base..base + LANES]) {
                    let t = v - ci;
                    *acc += t * t;
                }
            }
            let d = block_sqrt(&d2);
            for (o, v) in out[base..base + LANES].iter_mut().zip(&d) {
                *o += v;
            }
        }
        for k in blocks * LANES..self.len {
            let mut s = 0.0;
            for (axis, col) in self.coords.iter().enumerate() {
                let t = col[k] - c.0[axis];
                s += t * t;
            }
            out[k] += s.sqrt();
        }
    }

    /// Writes `out[k] = Σ_r d(point_k, requests[r])` — the grid DP's
    /// per-step service costs in one pass. Each node block stays in
    /// registers while every request is accumulated against it (in
    /// request order, so each `out[k]` is bit-identical to the scalar
    /// per-node loop *and* to repeated [`SoaPoints::add_distances`]
    /// calls), touching the coordinate columns and `out` only once
    /// instead of once per request.
    ///
    /// # Panics
    /// Panics when `out.len() != self.len()`.
    pub fn service_costs_into(&self, requests: &[Point<N>], out: &mut [f64]) {
        assert_eq!(out.len(), self.len, "output length mismatch");
        let blocks = self.len / LANES;
        for b in 0..blocks {
            let base = b * LANES;
            let mut acc = [0.0f64; LANES];
            for v in requests {
                let mut d2 = [0.0f64; LANES];
                for (axis, col) in self.coords.iter().enumerate() {
                    let ci = v.0[axis];
                    for (a, x) in d2.iter_mut().zip(&col[base..base + LANES]) {
                        let t = x - ci;
                        *a += t * t;
                    }
                }
                let d = block_sqrt(&d2);
                for (a, dv) in acc.iter_mut().zip(&d) {
                    *a += dv;
                }
            }
            out[base..base + LANES].copy_from_slice(&acc);
        }
        for k in blocks * LANES..self.len {
            let mut sum = 0.0;
            for v in requests {
                let mut d2 = 0.0;
                for (axis, col) in self.coords.iter().enumerate() {
                    let t = col[k] - v.0[axis];
                    d2 += t * t;
                }
                sum += d2.sqrt();
            }
            out[k] = sum;
        }
    }

    /// Chunked sum of distances from every stored point to `c` — the SoA
    /// twin of [`sum_distances_points`], with the identical block and
    /// accumulator pattern (bit-equal on the same data).
    pub fn sum_distances(&self, c: &Point<N>) -> f64 {
        let mut acc = [0.0f64; ACCS];
        let blocks = self.len / LANES;
        for b in 0..blocks {
            let base = b * LANES;
            let mut d2 = [0.0f64; LANES];
            for (axis, col) in self.coords.iter().enumerate() {
                let ci = c.0[axis];
                for (a, v) in d2.iter_mut().zip(&col[base..base + LANES]) {
                    let t = v - ci;
                    *a += t * t;
                }
            }
            let d = block_sqrt(&d2);
            for (l, v) in d.iter().enumerate() {
                acc[l % ACCS] += v;
            }
        }
        let mut tail = 0.0;
        for k in blocks * LANES..self.len {
            let mut s = 0.0;
            for (axis, col) in self.coords.iter().enumerate() {
                let t = col[k] - c.0[axis];
                s += t * t;
            }
            tail += s.sqrt();
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{P2, P3};
    use crate::sample::SeededSampler;

    fn cloud(seed: u64, n: usize) -> Vec<P2> {
        let mut s = SeededSampler::new(seed);
        (0..n).map(|_| s.point_in_cube(4.0)).collect()
    }

    #[test]
    fn chunked_sum_matches_scalar_within_reordering_error() {
        for n in [0, 1, 5, 8, 9, 31, 64, 257] {
            let pts = cloud(7 + n as u64, n);
            let c = P2::xy(0.3, -1.2);
            let fast = sum_distances_points(&pts, &c);
            let slow = sum_distances_points_scalar(&pts, &c);
            assert!(
                (fast - slow).abs() <= 1e-12 * (1.0 + slow),
                "n={n}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn weighted_sum_is_bit_identical_to_scalar() {
        let mut s = SeededSampler::new(3);
        for n in [1usize, 7, 8, 20, 100] {
            let pts = cloud(n as u64, n);
            let w: Vec<f64> = (0..n).map(|_| s.uniform(0.1, 3.0)).collect();
            let c = P2::xy(-0.4, 0.9);
            let fast = weighted_sum_distances_points(&pts, &w, &c);
            let slow = weighted_sum_distances_points_scalar(&pts, &w, &c);
            assert_eq!(fast.to_bits(), slow.to_bits(), "n={n}");
        }
    }

    #[test]
    fn weiszfeld_accumulate_is_bit_identical_to_scalar() {
        let mut s = SeededSampler::new(17);
        for n in [1usize, 8, 13, 40] {
            let mut pts = cloud(50 + n as u64, n);
            // Force a coincident point so the ε-branch is exercised.
            let y = pts[n / 2];
            pts.push(y);
            let w: Vec<f64> = (0..pts.len()).map(|_| s.uniform(0.5, 2.0)).collect();
            let fast = weiszfeld_accumulate(&pts, &w, &y, 1e-14);
            let slow = weiszfeld_accumulate_scalar(&pts, &w, &y, 1e-14);
            assert_eq!(fast.denom.to_bits(), slow.denom.to_bits());
            assert_eq!(
                fast.coincident_weight.to_bits(),
                slow.coincident_weight.to_bits()
            );
            for i in 0..2 {
                assert_eq!(fast.num.0[i].to_bits(), slow.num.0[i].to_bits());
                assert_eq!(fast.r_vec.0[i].to_bits(), slow.r_vec.0[i].to_bits());
            }
        }
    }

    #[test]
    fn nearest_matches_scalar_min() {
        for n in [1usize, 8, 9, 33, 100] {
            let pts = cloud(900 + n as u64, n);
            let c = P2::xy(0.1, 0.1);
            let (idx, dist) = nearest_index_points(&pts, &c).unwrap();
            let best = pts
                .iter()
                .map(|p| p.distance(&c))
                .fold(f64::INFINITY, f64::min);
            assert!((dist - best).abs() < 1e-12);
            assert!((pts[idx].distance(&c) - best).abs() < 1e-12);
        }
        assert!(nearest_index_points::<2>(&[], &P2::origin()).is_none());
    }

    #[test]
    fn nearest_ties_resolve_to_first_index_like_min_by() {
        // Two exactly equidistant points (one in the chunked body, one in
        // the tail): the first index must win, matching `Iterator::min_by`.
        let mut pts = vec![P2::xy(9.0, 9.0); 10];
        pts[2] = P2::xy(1.0, 0.0);
        pts[9] = P2::xy(-1.0, 0.0);
        let (idx, dist) = nearest_index_points(&pts, &P2::origin()).unwrap();
        assert_eq!(idx, 2);
        assert!((dist - 1.0).abs() < 1e-15);
        let scalar_idx = pts
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.distance_sq(&P2::origin())
                    .total_cmp(&b.1.distance_sq(&P2::origin()))
            })
            .unwrap()
            .0;
        assert_eq!(idx, scalar_idx);
    }

    #[test]
    fn soa_roundtrip_and_reuse() {
        let pts = cloud(1, 11);
        let mut soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.len(), 11);
        assert!(!soa.is_empty());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(soa.get(i), *p);
        }
        // Reassign with different contents, then push.
        let other = cloud(2, 3);
        soa.assign(&other);
        assert_eq!(soa.len(), 3);
        soa.push(&P2::xy(5.0, 6.0));
        assert_eq!(soa.get(3), P2::xy(5.0, 6.0));
    }

    #[test]
    fn soa_sum_bit_equals_aos_sum() {
        for n in [0usize, 3, 8, 17, 64, 129] {
            let pts = cloud(40 + n as u64, n);
            let soa = SoaPoints::from_points(&pts);
            let c = P2::xy(1.0, -0.5);
            assert_eq!(
                soa.sum_distances(&c).to_bits(),
                sum_distances_points(&pts, &c).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn add_distances_accumulates_in_request_order() {
        let nodes = cloud(5, 37);
        let soa = SoaPoints::from_points(&nodes);
        let reqs = [P2::xy(0.5, 0.5), P2::xy(-1.0, 2.0), P2::xy(3.0, -3.0)];
        let mut out = vec![0.0; nodes.len()];
        for r in &reqs {
            soa.add_distances(r, &mut out);
        }
        for (k, node) in nodes.iter().enumerate() {
            // Same element order as the scalar per-node loop → bit-equal.
            let mut expect = 0.0f64;
            for r in &reqs {
                expect += r.distance(node);
            }
            assert_eq!(out[k].to_bits(), expect.to_bits(), "node {k}");
        }
    }

    #[test]
    fn service_costs_into_bit_equals_repeated_add_distances() {
        let nodes = cloud(9, 61);
        let soa = SoaPoints::from_points(&nodes);
        for r in [0usize, 1, 3, 9] {
            let mut s = SeededSampler::new(200 + r as u64);
            let reqs: Vec<P2> = (0..r).map(|_| s.point_in_cube(3.0)).collect();
            let mut one_pass = vec![f64::NAN; nodes.len()];
            soa.service_costs_into(&reqs, &mut one_pass);
            let mut accumulated = vec![0.0; nodes.len()];
            for v in &reqs {
                soa.add_distances(v, &mut accumulated);
            }
            for (k, (a, b)) in one_pass.iter().zip(&accumulated).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "r={r} node {k}");
            }
        }
    }

    #[test]
    fn distances_sq_into_matches_pointwise() {
        let pts = cloud(6, 21);
        let soa = SoaPoints::from_points(&pts);
        let c = P2::xy(0.7, 0.2);
        let mut out = vec![1.0; pts.len()]; // must be overwritten, not accumulated
        soa.distances_sq_into(&c, &mut out);
        for (k, p) in pts.iter().enumerate() {
            assert!((out[k] - p.distance_sq(&c)).abs() < 1e-12);
        }
    }

    #[test]
    fn kernels_cover_higher_dimensions() {
        let mut s = SeededSampler::new(77);
        let pts: Vec<P3> = (0..40).map(|_| s.point_in_cube(2.0)).collect();
        let c = P3::new([0.2, -0.1, 0.4]);
        let fast = sum_distances_points(&pts, &c);
        let slow = sum_distances_points_scalar(&pts, &c);
        assert!((fast - slow).abs() <= 1e-12 * (1.0 + slow));
        let soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.sum_distances(&c).to_bits(), fast.to_bits());
    }
}
