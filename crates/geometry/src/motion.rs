//! Bounded-step motion, the kinematic primitive of every speed-limited
//! server and agent in the model: move from a position towards a target,
//! covering at most a given distance.

use crate::point::Point;

/// Moves from `from` towards `to`, covering at most `max_step` distance.
///
/// Returns `to` itself when it is within reach; otherwise the point at
/// distance exactly `max_step` from `from` on the segment `[from, to]`.
/// A non-positive `max_step` leaves the position unchanged (a server that
/// may not move). This is the only way positions advance in the simulator,
/// so the movement constraint `d(P_t, P_{t+1}) ≤ m` holds by construction.
#[inline]
pub fn step_towards<const N: usize>(from: &Point<N>, to: &Point<N>, max_step: f64) -> Point<N> {
    if max_step <= 0.0 {
        return *from;
    }
    let delta = *to - *from;
    let dist = delta.norm();
    if dist <= max_step {
        *to
    } else {
        *from + delta * (max_step / dist)
    }
}

/// Clamps a proposed new position so the move from `from` respects the
/// distance budget `max_step`; used to sanitize externally-proposed moves
/// (e.g. from an offline trajectory being replayed).
#[inline]
pub fn clamp_move<const N: usize>(from: &Point<N>, proposed: &Point<N>, max_step: f64) -> Point<N> {
    step_towards(from, proposed, max_step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::P2;

    #[test]
    fn reaches_target_when_in_range() {
        let a = P2::xy(0.0, 0.0);
        let b = P2::xy(1.0, 1.0);
        assert_eq!(step_towards(&a, &b, 5.0), b);
    }

    #[test]
    fn stops_at_budget_when_out_of_range() {
        let a = P2::xy(0.0, 0.0);
        let b = P2::xy(10.0, 0.0);
        let p = step_towards(&a, &b, 3.0);
        assert!((p.distance(&a) - 3.0).abs() < 1e-12);
        assert!((p - P2::xy(3.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn zero_budget_stays_put() {
        let a = P2::xy(2.0, 3.0);
        let b = P2::xy(10.0, 0.0);
        assert_eq!(step_towards(&a, &b, 0.0), a);
        assert_eq!(step_towards(&a, &b, -1.0), a);
    }

    #[test]
    fn exact_budget_reaches_target() {
        let a = P2::xy(0.0, 0.0);
        let b = P2::xy(3.0, 4.0);
        assert_eq!(step_towards(&a, &b, 5.0), b);
    }

    #[test]
    fn move_never_exceeds_budget() {
        let a = P2::xy(1.0, 1.0);
        for i in 0..100 {
            let target = P2::xy(i as f64, (i * 3 % 7) as f64);
            let m = 0.5;
            let p = step_towards(&a, &target, m);
            assert!(p.distance(&a) <= m + 1e-12);
        }
    }

    #[test]
    fn degenerate_same_point() {
        let a = P2::xy(1.0, 1.0);
        assert_eq!(step_towards(&a, &a, 1.0), a);
    }
}
