//! Fixed-dimension Euclidean points and vectors.
//!
//! The paper's model is dimension-agnostic: the lower bounds hold in every
//! dimension and the Move-to-Center analysis distinguishes only the line
//! (`N = 1`) from the plane and above. We therefore expose a const-generic
//! [`Point<N>`] so the entire stack (simulator, solvers, adversaries) is
//! generic over the dimension, with zero-cost fixed-size arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point (or displacement vector) in `N`-dimensional Euclidean space.
///
/// `Point` is used both for positions and for displacement vectors; the
/// arithmetic operators implement the usual vector-space structure and
/// [`Point::distance`] the Euclidean metric `d(·,·)` of the paper.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const N: usize>(pub [f64; N]);

/// The Euclidean line, where the paper's bounds are tight.
pub type P1 = Point<1>;
/// The Euclidean plane, the paper's primary setting.
pub type P2 = Point<2>;
/// Three-dimensional space, exercised to confirm the plane analysis carries
/// over to higher dimensions.
pub type P3 = Point<3>;

impl<const N: usize> Point<N> {
    /// The origin of the space. The paper starts both servers at a common
    /// point `P_0`; by translation invariance we may take it to be the
    /// origin.
    #[inline]
    pub const fn origin() -> Self {
        Point([0.0; N])
    }

    /// Builds a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; N]) -> Self {
        Point(coords)
    }

    /// A point with every coordinate equal to `v`.
    #[inline]
    pub fn splat(v: f64) -> Self {
        Point([v; N])
    }

    /// The dimension `N` of the ambient space.
    #[inline]
    pub const fn dim(&self) -> usize {
        N
    }

    /// Coordinate slice view.
    #[inline]
    pub fn coords(&self) -> &[f64; N] {
        &self.0
    }

    /// Euclidean norm `‖self‖₂`.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm, cheaper than [`Point::norm`] when only
    /// comparisons are needed.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..N {
            s += self.0[i] * self.0[i];
        }
        s
    }

    /// Euclidean distance `d(self, other)`, the service and movement metric
    /// of the model.
    #[inline]
    pub fn distance(&self, other: &Self) -> f64 {
        (*self - *other).norm()
    }

    /// Squared distance; avoids the square root for comparisons.
    #[inline]
    pub fn distance_sq(&self, other: &Self) -> f64 {
        (*self - *other).norm_sq()
    }

    /// Inner product.
    #[inline]
    pub fn dot(&self, other: &Self) -> f64 {
        let mut s = 0.0;
        for i in 0..N {
            s += self.0[i] * other.0[i];
        }
        s
    }

    /// Linear interpolation: `self + t·(other − self)`. `t = 0` yields
    /// `self`, `t = 1` yields `other`; `t` outside `[0,1]` extrapolates.
    #[inline]
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        *self + (*other - *self) * t
    }

    /// Returns the unit vector pointing in the direction of `self`, or
    /// `None` when the norm is numerically zero (direction undefined).
    #[inline]
    pub fn normalized(&self) -> Option<Self> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(*self / n)
        }
    }

    /// Componentwise minimum, used to grow bounding boxes.
    #[inline]
    pub fn min_components(&self, other: &Self) -> Self {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(&other.0) {
            *o = o.min(*b);
        }
        Point(out)
    }

    /// Componentwise maximum, used to grow bounding boxes.
    #[inline]
    pub fn max_components(&self, other: &Self) -> Self {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(&other.0) {
            *o = o.max(*b);
        }
        Point(out)
    }

    /// True when every coordinate is finite — guards against NaN/∞ escaping
    /// solvers into cost accounting.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// Embeds the point into a dynamic-dimension [`DynPoint`].
    #[inline]
    pub fn to_dyn(&self) -> DynPoint {
        DynPoint(self.0.to_vec())
    }
}

impl Point<1> {
    /// Convenience accessor for the line: the single coordinate.
    #[inline]
    pub fn x(&self) -> f64 {
        self.0[0]
    }
}

impl Point<2> {
    /// Builds a planar point from Cartesian coordinates.
    #[inline]
    pub const fn xy(x: f64, y: f64) -> Self {
        Point([x, y])
    }
}

impl<const N: usize> Default for Point<N> {
    fn default() -> Self {
        Self::origin()
    }
}

impl<const N: usize> fmt::Debug for Point<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:?}", self.0)
    }
}

impl<const N: usize> fmt::Display for Point<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.6}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> Add for Point<N> {
    type Output = Self;
    #[inline]
    fn add(mut self, rhs: Self) -> Self {
        for i in 0..N {
            self.0[i] += rhs.0[i];
        }
        self
    }
}

impl<const N: usize> AddAssign for Point<N> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..N {
            self.0[i] += rhs.0[i];
        }
    }
}

impl<const N: usize> Sub for Point<N> {
    type Output = Self;
    #[inline]
    fn sub(mut self, rhs: Self) -> Self {
        for i in 0..N {
            self.0[i] -= rhs.0[i];
        }
        self
    }
}

impl<const N: usize> SubAssign for Point<N> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        for i in 0..N {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl<const N: usize> Mul<f64> for Point<N> {
    type Output = Self;
    #[inline]
    fn mul(mut self, rhs: f64) -> Self {
        for c in &mut self.0 {
            *c *= rhs;
        }
        self
    }
}

impl<const N: usize> Div<f64> for Point<N> {
    type Output = Self;
    #[inline]
    fn div(mut self, rhs: f64) -> Self {
        for c in &mut self.0 {
            *c /= rhs;
        }
        self
    }
}

impl<const N: usize> Neg for Point<N> {
    type Output = Self;
    #[inline]
    fn neg(mut self) -> Self {
        for c in &mut self.0 {
            *c = -*c;
        }
        self
    }
}

impl<const N: usize> Index<usize> for Point<N> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const N: usize> IndexMut<usize> for Point<N> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const N: usize> From<[f64; N]> for Point<N> {
    #[inline]
    fn from(coords: [f64; N]) -> Self {
        Point(coords)
    }
}

/// A point whose dimension is chosen at runtime.
///
/// The fixed-size [`Point`] covers the hot paths; `DynPoint` exists for
/// tooling that must handle instances of arbitrary dimension read from
/// configuration (e.g. the experiment runner dispatching on a `dim` field).
#[derive(Clone, PartialEq, Debug)]
pub struct DynPoint(pub Vec<f64>);

impl DynPoint {
    /// The origin of `dim`-dimensional space.
    pub fn origin(dim: usize) -> Self {
        DynPoint(vec![0.0; dim])
    }

    /// Dimension of the point.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Euclidean distance to another dynamic point of the same dimension.
    ///
    /// # Panics
    /// Panics when dimensions differ — mixing spaces is a logic error.
    pub fn distance(&self, other: &Self) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Converts into a fixed-dimension point.
    ///
    /// # Panics
    /// Panics when the runtime dimension does not equal `N`.
    pub fn to_fixed<const N: usize>(&self) -> Point<N> {
        assert_eq!(self.0.len(), N, "dimension mismatch");
        let mut coords = [0.0; N];
        coords.copy_from_slice(&self.0);
        Point(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_zero() {
        let o = P2::origin();
        assert_eq!(o.coords(), &[0.0, 0.0]);
        assert_eq!(o.norm(), 0.0);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = P2::xy(0.0, 0.0);
        let b = P2::xy(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn vector_arithmetic() {
        let a = P2::xy(1.0, 2.0);
        let b = P2::xy(3.0, -1.0);
        assert_eq!(a + b, P2::xy(4.0, 1.0));
        assert_eq!(a - b, P2::xy(-2.0, 3.0));
        assert_eq!(a * 2.0, P2::xy(2.0, 4.0));
        assert_eq!(b / 2.0, P2::xy(1.5, -0.5));
        assert_eq!(-a, P2::xy(-1.0, -2.0));
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut a = P2::xy(1.0, 1.0);
        a += P2::xy(2.0, 3.0);
        assert_eq!(a, P2::xy(3.0, 4.0));
        a -= P2::xy(1.0, 1.0);
        assert_eq!(a, P2::xy(2.0, 3.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = P2::xy(0.0, 0.0);
        let b = P2::xy(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), P2::xy(1.0, 2.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = P2::xy(3.0, 4.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(P2::origin().normalized().is_none());
    }

    #[test]
    fn dot_product() {
        let a = P3::new([1.0, 2.0, 3.0]);
        let b = P3::new([4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn component_min_max() {
        let a = P2::xy(1.0, 5.0);
        let b = P2::xy(3.0, 2.0);
        assert_eq!(a.min_components(&b), P2::xy(1.0, 2.0));
        assert_eq!(a.max_components(&b), P2::xy(3.0, 5.0));
    }

    #[test]
    fn finiteness_guard() {
        assert!(P2::xy(1.0, 2.0).is_finite());
        assert!(!P2::xy(f64::NAN, 0.0).is_finite());
        assert!(!P2::xy(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn dyn_point_roundtrip() {
        let p = P3::new([1.0, 2.0, 3.0]);
        let d = p.to_dyn();
        assert_eq!(d.dim(), 3);
        assert_eq!(d.to_fixed::<3>(), p);
    }

    #[test]
    fn dyn_point_distance() {
        let a = DynPoint(vec![0.0, 0.0]);
        let b = DynPoint(vec![3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dyn_point_dimension_mismatch_panics() {
        let a = DynPoint(vec![0.0, 0.0]);
        let b = DynPoint(vec![1.0]);
        let _ = a.distance(&b);
    }

    #[test]
    fn indexing() {
        let mut p = P2::xy(1.0, 2.0);
        assert_eq!(p[0], 1.0);
        p[1] = 7.0;
        assert_eq!(p, P2::xy(1.0, 7.0));
    }

    #[test]
    fn display_formats_coordinates() {
        let p = P2::xy(1.0, -2.5);
        let s = format!("{p}");
        assert!(s.contains("1.000000"));
        assert!(s.contains("-2.500000"));
    }
}
