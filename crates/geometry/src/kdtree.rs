//! A KD-tree over `N`-dimensional points.
//!
//! Workload generators and experiment diagnostics need fast spatial
//! queries over request clouds: nearest request to the server (per-step
//! diagnostics), range extraction for clustered workloads, and k-nearest
//! statistics on traces. The tree stores indices into the caller's point
//! slice, is built once with a median-of-widest-dimension split, and
//! answers nearest / k-nearest / range queries with standard pruning.

use crate::bbox::Aabb;
use crate::point::Point;

/// Immutable KD-tree over a borrowed set of points (stored as indices).
#[derive(Debug)]
pub struct KdTree<const N: usize> {
    points: Vec<Point<N>>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug)]
struct Node {
    /// Index of the point stored at this node.
    point_idx: usize,
    /// Split dimension.
    dim: usize,
    left: Option<usize>,
    right: Option<usize>,
}

impl<const N: usize> KdTree<N> {
    /// Builds a balanced tree over `points` (the points are copied; query
    /// results are indices into the original order).
    pub fn build(points: &[Point<N>]) -> Self {
        let mut indices: Vec<usize> = (0..points.len()).collect();
        let mut tree = KdTree {
            points: points.to_vec(),
            nodes: Vec::with_capacity(points.len()),
            root: None,
        };
        tree.root = tree.build_rec(&mut indices);
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn build_rec(&mut self, indices: &mut [usize]) -> Option<usize> {
        if indices.is_empty() {
            return None;
        }
        // Split along the widest dimension of this subset for balance
        // robustness on skewed workloads.
        let bbox = {
            let mut b = Aabb::empty();
            for &i in indices.iter() {
                b.insert(&self.points[i]);
            }
            b
        };
        let dim = bbox.widest_dim();
        let mid = indices.len() / 2;
        indices.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a][dim].total_cmp(&self.points[b][dim])
        });
        let point_idx = indices[mid];
        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            point_idx,
            dim,
            left: None,
            right: None,
        });
        // Recurse on the two halves (excluding the median element).
        let (left_slice, rest) = indices.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = self.build_rec(left_slice);
        let right = self.build_rec(right_slice);
        self.nodes[node_idx].left = left;
        self.nodes[node_idx].right = right;
        Some(node_idx)
    }

    /// Index and distance of the nearest point to `query`, or `None` when
    /// empty.
    pub fn nearest(&self, query: &Point<N>) -> Option<(usize, f64)> {
        let root = self.root?;
        let mut best = (usize::MAX, f64::INFINITY);
        self.nearest_rec(root, query, &mut best);
        Some((best.0, best.1.sqrt()))
    }

    fn nearest_rec(&self, node_idx: usize, query: &Point<N>, best: &mut (usize, f64)) {
        let node = &self.nodes[node_idx];
        let p = &self.points[node.point_idx];
        let d2 = p.distance_sq(query);
        if d2 < best.1 {
            *best = (node.point_idx, d2);
        }
        let diff = query[node.dim] - p[node.dim];
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, query, best);
        }
        // Only cross the splitting hyperplane when the slab can still beat
        // the current best.
        if diff * diff < best.1 {
            if let Some(f) = far {
                self.nearest_rec(f, query, best);
            }
        }
    }

    /// Indices of the `k` nearest points (ties broken arbitrarily), sorted
    /// by increasing distance. Returns fewer than `k` when the tree is
    /// smaller.
    pub fn k_nearest(&self, query: &Point<N>, k: usize) -> Vec<(usize, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Max-heap of (dist_sq, idx) capped at k, kept as a sorted Vec —
        // k is small in all our uses, so linear insertion is fine.
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        if let Some(root) = self.root {
            self.k_nearest_rec(root, query, k, &mut heap);
        }
        heap.into_iter().map(|(d2, i)| (i, d2.sqrt())).collect()
    }

    fn k_nearest_rec(
        &self,
        node_idx: usize,
        query: &Point<N>,
        k: usize,
        heap: &mut Vec<(f64, usize)>,
    ) {
        let node = &self.nodes[node_idx];
        let p = &self.points[node.point_idx];
        let d2 = p.distance_sq(query);
        let worst = heap.last().map_or(f64::INFINITY, |e| e.0);
        if heap.len() < k || d2 < worst {
            let pos = heap.partition_point(|e| e.0 < d2);
            heap.insert(pos, (d2, node.point_idx));
            if heap.len() > k {
                heap.pop();
            }
        }
        let diff = query[node.dim] - p[node.dim];
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.k_nearest_rec(n, query, k, heap);
        }
        let worst = heap.last().map_or(f64::INFINITY, |e| e.0);
        if heap.len() < k || diff * diff < worst {
            if let Some(f) = far {
                self.k_nearest_rec(f, query, k, heap);
            }
        }
    }

    /// Indices of all points within `radius` of `query` (closed ball), in
    /// arbitrary order.
    pub fn within_radius(&self, query: &Point<N>, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.radius_rec(root, query, radius * radius, &mut out);
        }
        out
    }

    fn radius_rec(&self, node_idx: usize, query: &Point<N>, r2: f64, out: &mut Vec<usize>) {
        let node = &self.nodes[node_idx];
        let p = &self.points[node.point_idx];
        if p.distance_sq(query) <= r2 {
            out.push(node.point_idx);
        }
        let diff = query[node.dim] - p[node.dim];
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.radius_rec(n, query, r2, out);
        }
        if diff * diff <= r2 {
            if let Some(f) = far {
                self.radius_rec(f, query, r2, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::P2;
    use crate::sample::SeededSampler;

    fn brute_nearest(pts: &[P2], q: &P2) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, p) in pts.iter().enumerate() {
            let d = p.distance(q);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    #[test]
    fn empty_tree_has_no_nearest() {
        let tree = KdTree::<2>::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.nearest(&P2::origin()).is_none());
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(&[P2::xy(1.0, 2.0)]);
        let (i, d) = tree.nearest(&P2::origin()).unwrap();
        assert_eq!(i, 0);
        assert!((d - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut s = SeededSampler::new(42);
        let pts: Vec<P2> = (0..200).map(|_| s.point_in_cube(10.0)).collect();
        let tree = KdTree::build(&pts);
        for _ in 0..50 {
            let q = s.point_in_cube(12.0);
            let (ti, td) = tree.nearest(&q).unwrap();
            let (_bi, bd) = brute_nearest(&pts, &q);
            assert!(
                (td - bd).abs() < 1e-9,
                "tree {td} vs brute {bd} at idx {ti}"
            );
        }
    }

    #[test]
    fn k_nearest_sorted_and_correct() {
        let mut s = SeededSampler::new(7);
        let pts: Vec<P2> = (0..100).map(|_| s.point_in_cube(5.0)).collect();
        let tree = KdTree::build(&pts);
        let q = P2::xy(0.3, -0.2);
        let knn = tree.k_nearest(&q, 10);
        assert_eq!(knn.len(), 10);
        // Sorted by distance.
        for w in knn.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        // Matches the brute-force 10 smallest distances.
        let mut dists: Vec<f64> = pts.iter().map(|p| p.distance(&q)).collect();
        dists.sort_by(f64::total_cmp);
        for (j, (_, d)) in knn.iter().enumerate() {
            assert!((d - dists[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn k_nearest_with_k_larger_than_size() {
        let pts = vec![P2::xy(0.0, 0.0), P2::xy(1.0, 0.0)];
        let tree = KdTree::build(&pts);
        let knn = tree.k_nearest(&P2::origin(), 10);
        assert_eq!(knn.len(), 2);
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let mut s = SeededSampler::new(99);
        let pts: Vec<P2> = (0..150).map(|_| s.point_in_cube(4.0)).collect();
        let tree = KdTree::build(&pts);
        let q = P2::xy(0.5, 0.5);
        let r = 1.5;
        let mut got = tree.within_radius(&q, r);
        got.sort_unstable();
        let mut expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(&q) <= r)
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(!expected.is_empty(), "test should be non-trivial");
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![P2::xy(1.0, 1.0); 8];
        let tree = KdTree::build(&pts);
        let (_, d) = tree.nearest(&P2::xy(1.0, 1.0)).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(tree.within_radius(&P2::xy(1.0, 1.0), 0.1).len(), 8);
    }
}
