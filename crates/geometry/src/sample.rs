//! Deterministic random sampling of points.
//!
//! Every stochastic component of the reproduction (workloads, adversarial
//! coin flips, randomized algorithms) draws through an explicitly seeded
//! generator so that every experiment cell is replayable from its recorded
//! seed. This module wraps `rand::StdRng` with the geometric primitives the
//! rest of the workspace needs.

use crate::point::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of random points and scalars.
///
/// Thin wrapper over `StdRng` adding uniform-in-cube, uniform-in-ball,
/// uniform-on-sphere and Gaussian point sampling in any dimension.
/// `Clone` snapshots the full RNG state, so streaming workloads that hold
/// a sampler can be checkpointed and replayed mid-stream.
#[derive(Clone, Debug)]
pub struct SeededSampler {
    rng: StdRng,
}

impl SeededSampler {
    /// Creates a sampler from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform (`StdRng` is seedable and
    /// portable within a rand major version).
    pub fn new(seed: u64) -> Self {
        SeededSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Mutable access to the underlying RNG for ad-hoc draws.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform scalar in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Fair coin, the adversary's single random decision in the paper's
    /// lower-bound constructions.
    pub fn coin(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn int_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }

    /// Standard normal scalar via Box–Muller (avoids the rand_distr
    /// dependency).
    pub fn gaussian(&mut self) -> f64 {
        // Draw u1 in (0,1] to keep ln finite.
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Point with i.i.d. coordinates uniform in `[-half, half]`.
    pub fn point_in_cube<const N: usize>(&mut self, half: f64) -> Point<N> {
        let mut c = [0.0; N];
        for v in &mut c {
            *v = self.uniform(-half, half);
        }
        Point(c)
    }

    /// Point with i.i.d. Gaussian coordinates `N(center_i, sigma²)`.
    pub fn gaussian_point<const N: usize>(&mut self, center: &Point<N>, sigma: f64) -> Point<N> {
        let mut c = center.0;
        for v in &mut c {
            *v += sigma * self.gaussian();
        }
        Point(c)
    }

    /// Uniform direction on the unit sphere (Gaussian normalization;
    /// rejection-free and dimension-agnostic).
    pub fn unit_vector<const N: usize>(&mut self) -> Point<N> {
        loop {
            let mut c = [0.0; N];
            for v in &mut c {
                *v = self.gaussian();
            }
            let p = Point(c);
            if let Some(u) = p.normalized() {
                return u;
            }
        }
    }

    /// Uniform point in the closed ball of radius `r` around `center`
    /// (radius via inverse-CDF `r·U^{1/N}`, direction uniform).
    pub fn point_in_ball<const N: usize>(&mut self, center: &Point<N>, r: f64) -> Point<N> {
        let u: f64 = self.rng.gen();
        let radius = r * u.powf(1.0 / N as f64);
        *center + self.unit_vector() * radius
    }

    /// Derives a child seed for a named sub-stream. Experiment sweeps use
    /// this so that cells are independent yet individually reproducible.
    pub fn derive_seed(root: u64, stream: u64) -> u64 {
        // SplitMix64 step over (root ⊕ golden·stream) — cheap, well mixed.
        let mut z = root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{P2, P3};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededSampler::new(123);
        let mut b = SeededSampler::new(123);
        for _ in 0..20 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededSampler::new(1);
        let mut b = SeededSampler::new(2);
        let xs: Vec<f64> = (0..10).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f64> = (0..10).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn cube_points_in_bounds() {
        let mut s = SeededSampler::new(5);
        for _ in 0..100 {
            let p: P2 = s.point_in_cube(3.0);
            assert!(p[0].abs() <= 3.0 && p[1].abs() <= 3.0);
        }
    }

    #[test]
    fn ball_points_in_bounds() {
        let mut s = SeededSampler::new(6);
        let c = P3::new([1.0, -2.0, 0.5]);
        for _ in 0..200 {
            let p = s.point_in_ball(&c, 2.0);
            assert!(p.distance(&c) <= 2.0 + 1e-12);
        }
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        let mut s = SeededSampler::new(7);
        for _ in 0..50 {
            let u: P3 = s.unit_vector();
            assert!((u.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut s = SeededSampler::new(8);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| s.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut s = SeededSampler::new(9);
        let heads = (0..10_000).filter(|_| s.coin()).count();
        assert!((4500..5500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn derived_seeds_distinct() {
        let a = SeededSampler::derive_seed(42, 0);
        let b = SeededSampler::derive_seed(42, 1);
        let c = SeededSampler::derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, SeededSampler::derive_seed(42, 0));
    }

    #[test]
    fn ball_radius_distribution_is_uniform_in_volume() {
        // In 2-D, P(radius ≤ t·r) = t²; check the median radius ≈ r/√2.
        let mut s = SeededSampler::new(10);
        let c = P2::origin();
        let mut radii: Vec<f64> = (0..20_000)
            .map(|_| s.point_in_ball(&c, 1.0).norm())
            .collect();
        radii.sort_by(f64::total_cmp);
        let median = radii[radii.len() / 2];
        assert!(
            (median - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "median {median}"
        );
    }
}
