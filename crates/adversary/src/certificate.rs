//! Adversary certificates: instance + explicit feasible offline trajectory.

use msp_core::cost::{evaluate_trajectory, first_move_violation, ServingOrder};
use msp_core::model::Instance;
use msp_geometry::Point;

/// A lower-bound instance together with the adversary's own server
/// trajectory (the proof's "offline solution").
#[derive(Clone, Debug)]
pub struct Certificate<const N: usize> {
    /// The request sequence presented to the online algorithm.
    pub instance: Instance<N>,
    /// The adversary's feasible trajectory `P_0 … P_T` (respects the
    /// *unaugmented* movement limit `m`).
    pub adversary: Vec<Point<N>>,
}

impl<const N: usize> Certificate<N> {
    /// Builds a certificate, asserting trajectory feasibility — a
    /// construction that cheats the movement limit would invalidate every
    /// ratio derived from it.
    pub fn new(instance: Instance<N>, adversary: Vec<Point<N>>) -> Self {
        assert_eq!(
            adversary.len(),
            instance.horizon() + 1,
            "certificate trajectory must have T+1 positions"
        );
        assert!(
            adversary[0].distance(&instance.start) <= 1e-9,
            "certificate must start at the instance start"
        );
        assert_eq!(
            first_move_violation(&adversary, instance.max_move, 1e-9),
            None,
            "certificate trajectory violates the movement limit"
        );
        Certificate {
            instance,
            adversary,
        }
    }

    /// The adversary's total cost under `order` — an upper bound on OPT.
    pub fn adversary_cost(&self, order: ServingOrder) -> f64 {
        evaluate_trajectory(&self.instance, &self.adversary, order).total()
    }

    /// Horizon of the underlying instance.
    pub fn horizon(&self) -> usize {
        self.instance.horizon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_core::model::Step;
    use msp_geometry::P2;

    #[test]
    fn cost_is_priced_with_the_shared_evaluator() {
        let inst = Instance::new(2.0, 1.0, P2::origin(), vec![Step::single(P2::xy(1.0, 0.0))]);
        let cert = Certificate::new(inst, vec![P2::origin(), P2::xy(1.0, 0.0)]);
        // Move cost 2·1, serve 0.
        assert!((cert.adversary_cost(ServingOrder::MoveFirst) - 2.0).abs() < 1e-12);
        // Answer-first: serve from origin (1) + move (2).
        assert!((cert.adversary_cost(ServingOrder::AnswerFirst) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "violates the movement limit")]
    fn infeasible_certificate_rejected() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![Step::single(P2::xy(1.0, 0.0))]);
        let _ = Certificate::new(inst, vec![P2::origin(), P2::xy(5.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "T+1 positions")]
    fn wrong_length_rejected() {
        let inst = Instance::new(1.0, 1.0, P2::origin(), vec![]);
        let _ = Certificate::new(inst, vec![]);
    }
}
