#![warn(missing_docs)]

//! Lower-bound adversaries (Section 3 and Theorem 8 of the paper).
//!
//! Each theorem's proof constructs a randomized request sequence (the only
//! randomness is one fair coin per phase, flipped obliviously — i.e.
//! independent of the online algorithm's behaviour) together with an
//! explicit, feasible trajectory for the adversary's own server. This
//! crate reifies those constructions as generators that return both the
//! [`msp_core::Instance`] and the adversary trajectory as a
//! [`Certificate`]: pricing the trajectory gives an *upper bound on OPT*,
//! so `C_Alg / C_certificate` is a valid **lower bound on the competitive
//! ratio** — exactly the quantity the lower-bound experiments must show
//! growing at the claimed rate.
//!
//! * [`thm1`] — no augmentation: ratio `Ω(√(T/D))`.
//! * [`thm2`] — augmentation `(1+δ)m`: ratio `Ω((1/δ)·R_max/R_min)`.
//! * [`thm3`] — Answer-First: ratio `Ω(r/D)`.
//! * [`thm8`] — Moving Client with a faster agent: ratio `Ω(√T·ε/(1+ε))`.

pub mod certificate;
pub mod thm1;
pub mod thm2;
pub mod thm3;
pub mod thm8;

pub use certificate::Certificate;
pub use thm1::{build_thm1, Thm1Params};
pub use thm2::{build_thm2, build_thm2_rotating, Thm2Params};
pub use thm3::{build_thm3, Thm3Params};
pub use thm8::{build_thm8, Thm8Params};
