//! Theorem 1 construction: `Ω(√(T/D))` without resource augmentation.
//!
//! > We consider a sequence of `x` time steps with one request each on the
//! > starting position of the server. The adversary decides with
//! > probability ½ to move its server a distance `m` to the left or to the
//! > right for the first `x` time steps. […] For the remaining `T − x`
//! > steps the adversary issues requests on the position of its server and
//! > moves it a distance of `m` towards the same direction.
//!
//! With `x = √T`, the adversary pays `O(T·D·m + T·m)` while any online
//! algorithm is, with probability ½, at distance `≥ x·m` when the chase
//! phase begins and can never catch up (no augmentation), paying
//! `Ω((T − x)·x·m)` — ratio `Ω(√T/D)`.

use crate::certificate::Certificate;
use msp_core::model::{Instance, Step};
use msp_geometry::sample::SeededSampler;
use msp_geometry::Point;

/// Parameters of the Theorem 1 adversary.
#[derive(Clone, Copy, Debug)]
pub struct Thm1Params {
    /// Horizon `T`.
    pub horizon: usize,
    /// Movement cost weight `D`.
    pub d: f64,
    /// Movement limit `m` (shared by adversary and online server).
    pub m: f64,
    /// Separation-phase length `x`; `None` uses the proof's `⌈√T⌉`.
    pub x: Option<usize>,
}

impl Thm1Params {
    /// The separation-phase length actually used.
    pub fn phase_len(&self) -> usize {
        self.x
            .unwrap_or_else(|| (self.horizon as f64).sqrt().ceil() as usize)
            .clamp(1, self.horizon)
    }
}

/// Builds the Theorem 1 instance and the adversary's trajectory. The coin
/// (left vs right along the first axis) is drawn from `seed` — oblivious
/// by construction, since nothing else depends on it.
pub fn build_thm1<const N: usize>(params: &Thm1Params, seed: u64) -> Certificate<N> {
    assert!(params.horizon >= 1, "horizon must be positive");
    let x = params.phase_len();
    let mut sampler = SeededSampler::new(seed);
    let sign = if sampler.coin() { 1.0 } else { -1.0 };
    let mut dir = Point::<N>::origin();
    dir[0] = sign;

    let start = Point::<N>::origin();
    let mut adversary = Vec::with_capacity(params.horizon + 1);
    adversary.push(start);
    let mut steps = Vec::with_capacity(params.horizon);

    for t in 1..=params.horizon {
        let adv_pos = dir * (params.m * t as f64);
        adversary.push(adv_pos);
        if t <= x {
            // Separation phase: requests pin the online server at the
            // start while the adversary walks away.
            steps.push(Step::single(start));
        } else {
            // Chase phase: requests ride on the adversary's server.
            steps.push(Step::single(adv_pos));
        }
    }

    let instance = Instance::new(params.d, params.m, start, steps);
    Certificate::new(instance, adversary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_core::cost::ServingOrder;
    use msp_core::mtc::MoveToCenter;
    use msp_core::ratio::ratio_lower_bound;
    use msp_core::simulator::run;

    #[test]
    fn structure_matches_the_proof() {
        let p = Thm1Params {
            horizon: 100,
            d: 1.0,
            m: 1.0,
            x: None,
        };
        let cert = build_thm1::<1>(&p, 7);
        assert_eq!(cert.horizon(), 100);
        let x = p.phase_len();
        assert_eq!(x, 10);
        // Phase 1 requests at the origin.
        for t in 0..x {
            assert_eq!(cert.instance.steps[t].requests[0], Point::origin());
        }
        // Phase 2 requests on the adversary.
        for t in x..100 {
            assert_eq!(cert.instance.steps[t].requests[0], cert.adversary[t + 1]);
        }
    }

    #[test]
    fn adversary_cost_matches_proof_bound() {
        let p = Thm1Params {
            horizon: 400,
            d: 2.0,
            m: 1.0,
            x: None,
        };
        let cert = build_thm1::<1>(&p, 3);
        let x = p.phase_len() as f64;
        let t = p.horizon as f64;
        let bound = x * p.d * p.m + p.m * x * x + (t - x) * p.d * p.m;
        let cost = cert.adversary_cost(ServingOrder::MoveFirst);
        assert!(
            cost <= bound + 1e-9,
            "cost {cost} exceeds proof bound {bound}"
        );
    }

    #[test]
    fn coin_flips_both_directions() {
        let p = Thm1Params {
            horizon: 10,
            d: 1.0,
            m: 1.0,
            x: Some(3),
        };
        let mut seen_left = false;
        let mut seen_right = false;
        for seed in 0..20 {
            let cert = build_thm1::<1>(&p, seed);
            if cert.adversary[1][0] > 0.0 {
                seen_right = true;
            } else {
                seen_left = true;
            }
        }
        assert!(seen_left && seen_right);
    }

    #[test]
    fn unaugmented_mtc_ratio_grows_with_horizon() {
        // The shape claim at small scale: the certificate ratio for MtC
        // without augmentation grows as T grows (averaged over coins).
        let ratio_at = |t: usize| -> f64 {
            let p = Thm1Params {
                horizon: t,
                d: 1.0,
                m: 1.0,
                x: None,
            };
            let mut acc = 0.0;
            let runs = 6;
            for seed in 0..runs {
                let cert = build_thm1::<1>(&p, seed);
                let mut alg = MoveToCenter::new();
                let res = run(&cert.instance, &mut alg, 0.0, ServingOrder::MoveFirst);
                acc += ratio_lower_bound(
                    res.total_cost(),
                    cert.adversary_cost(ServingOrder::MoveFirst),
                );
            }
            acc / runs as f64
        };
        let small = ratio_at(64);
        let large = ratio_at(1024);
        assert!(
            large > 1.5 * small,
            "ratio should grow: T=64 → {small:.2}, T=1024 → {large:.2}"
        );
    }

    #[test]
    fn works_in_higher_dimensions() {
        let p = Thm1Params {
            horizon: 20,
            d: 1.0,
            m: 0.5,
            x: Some(4),
        };
        let cert = build_thm1::<3>(&p, 11);
        assert_eq!(cert.horizon(), 20);
        // Trajectory is confined to the first axis.
        for pos in &cert.adversary {
            assert_eq!(pos[1], 0.0);
            assert_eq!(pos[2], 0.0);
        }
    }
}
