//! Theorem 2 construction: `Ω((1/δ)·R_max/R_min)` with `(1+δ)m`
//! augmentation.
//!
//! Each cycle has two phases. *Separation*: `x` steps of `R_min` requests
//! at the cycle anchor while the adversary walks away at full speed `m` in
//! a coin direction. *Exploitation*: `⌈x/δ⌉` steps of `R_max` requests
//! riding on the adversary — the number of steps an online server at
//! distance `x·m` needs to catch up when its speed advantage is only
//! `δ·m` per round. Cycles repeat with fresh, oblivious coins; the anchor
//! of the next cycle is wherever the adversary ended.

use crate::certificate::Certificate;
use msp_core::model::{Instance, Step};
use msp_geometry::sample::SeededSampler;
use msp_geometry::Point;

/// Parameters of the Theorem 2 adversary.
#[derive(Clone, Copy, Debug)]
pub struct Thm2Params {
    /// Augmentation factor `δ ∈ (0, 1]` the online algorithm will be
    /// granted (the construction sizes its chase phase against it).
    pub delta: f64,
    /// Requests per step in the separation phase.
    pub r_min: usize,
    /// Requests per step in the exploitation phase.
    pub r_max: usize,
    /// Movement cost weight `D`.
    pub d: f64,
    /// Movement limit `m`.
    pub m: f64,
    /// Separation-phase length `x`; `None` uses `max(⌈2/δ⌉, 8)` (the proof
    /// requires `x ≥ 2/δ` and "sufficiently large").
    pub x: Option<usize>,
    /// Number of two-phase cycles.
    pub cycles: usize,
}

impl Thm2Params {
    /// The separation-phase length actually used.
    pub fn phase_len(&self) -> usize {
        self.x
            .unwrap_or_else(|| ((2.0 / self.delta).ceil() as usize).max(8))
    }

    /// Exploitation-phase length `⌈x/δ⌉`.
    pub fn chase_len(&self) -> usize {
        (self.phase_len() as f64 / self.delta).ceil() as usize
    }

    /// Total horizon `cycles · (x + ⌈x/δ⌉)`.
    pub fn horizon(&self) -> usize {
        self.cycles * (self.phase_len() + self.chase_len())
    }
}

/// Builds the Theorem 2 instance and the adversary's trajectory; one fresh
/// oblivious coin per cycle.
pub fn build_thm2<const N: usize>(params: &Thm2Params, seed: u64) -> Certificate<N> {
    assert!(params.delta > 0.0 && params.delta <= 1.0, "δ ∈ (0, 1]");
    assert!(params.r_min >= 1, "R_min ≥ 1");
    assert!(params.r_max >= params.r_min, "R_max ≥ R_min");
    assert!(params.cycles >= 1, "need at least one cycle");
    let x = params.phase_len();
    let chase = params.chase_len();
    let mut sampler = SeededSampler::new(seed);

    let start = Point::<N>::origin();
    let mut adversary = vec![start];
    let mut steps = Vec::with_capacity(params.horizon());
    let mut pos = start;

    for _ in 0..params.cycles {
        let anchor = pos;
        let sign = if sampler.coin() { 1.0 } else { -1.0 };
        let mut dir = Point::<N>::origin();
        dir[0] = sign;

        // Separation: R_min requests pin the online server at the anchor.
        for _ in 0..x {
            pos += dir * params.m;
            adversary.push(pos);
            steps.push(Step::repeated(anchor, params.r_min));
        }
        // Exploitation: R_max requests ride on the adversary while the
        // online server needs x/δ rounds to close the x·m gap.
        for _ in 0..chase {
            pos += dir * params.m;
            adversary.push(pos);
            steps.push(Step::repeated(pos, params.r_max));
        }
    }

    let instance = Instance::new(params.d, params.m, start, steps);
    Certificate::new(instance, adversary)
}

/// Planar/higher-dimensional variant of the Theorem 2 construction: each
/// cycle escapes in a *uniformly random direction* instead of ±e₁. The
/// request sequence is no longer collinear, so the instance genuinely
/// exercises dimension-≥2 geometry (used by experiment E4b to probe the
/// open gap between the `Ω(1/δ)` lower and `O(1/δ^{3/2})` upper bound).
pub fn build_thm2_rotating<const N: usize>(params: &Thm2Params, seed: u64) -> Certificate<N> {
    assert!(N >= 2, "rotating variant needs dimension ≥ 2");
    assert!(params.delta > 0.0 && params.delta <= 1.0, "δ ∈ (0, 1]");
    assert!(params.r_min >= 1, "R_min ≥ 1");
    assert!(params.r_max >= params.r_min, "R_max ≥ R_min");
    assert!(params.cycles >= 1, "need at least one cycle");
    let x = params.phase_len();
    let chase = params.chase_len();
    let mut sampler = SeededSampler::new(seed);

    let start = Point::<N>::origin();
    let mut adversary = vec![start];
    let mut steps = Vec::with_capacity(params.horizon());
    let mut pos = start;

    for _ in 0..params.cycles {
        let anchor = pos;
        let dir: Point<N> = sampler.unit_vector();
        for _ in 0..x {
            pos += dir * params.m;
            adversary.push(pos);
            steps.push(Step::repeated(anchor, params.r_min));
        }
        for _ in 0..chase {
            pos += dir * params.m;
            adversary.push(pos);
            steps.push(Step::repeated(pos, params.r_max));
        }
    }

    let instance = Instance::new(params.d, params.m, start, steps);
    Certificate::new(instance, adversary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_core::cost::ServingOrder;
    use msp_core::mtc::MoveToCenter;
    use msp_core::ratio::ratio_lower_bound;
    use msp_core::simulator::run;

    fn params(delta: f64, r_min: usize, r_max: usize, cycles: usize) -> Thm2Params {
        Thm2Params {
            delta,
            r_min,
            r_max,
            d: 1.0,
            m: 1.0,
            x: None,
            cycles,
        }
    }

    #[test]
    fn horizon_accounts_for_both_phases() {
        let p = params(0.5, 1, 4, 3);
        assert_eq!(p.phase_len(), 8);
        assert_eq!(p.chase_len(), 16);
        assert_eq!(p.horizon(), 3 * 24);
        let cert = build_thm2::<1>(&p, 1);
        assert_eq!(cert.horizon(), p.horizon());
    }

    #[test]
    fn request_counts_alternate_between_phases() {
        let p = params(0.5, 2, 5, 2);
        let cert = build_thm2::<1>(&p, 2);
        let x = p.phase_len();
        let c = p.chase_len();
        for cyc in 0..2 {
            let base = cyc * (x + c);
            for t in 0..x {
                assert_eq!(cert.instance.steps[base + t].len(), 2);
            }
            for t in 0..c {
                assert_eq!(cert.instance.steps[base + x + t].len(), 5);
            }
        }
        assert_eq!(cert.instance.request_bounds(), (2, 5));
    }

    #[test]
    fn exploitation_requests_ride_on_adversary() {
        let p = params(0.25, 1, 3, 1);
        let cert = build_thm2::<2>(&p, 5);
        let x = p.phase_len();
        for t in x..p.horizon() {
            assert_eq!(cert.instance.steps[t].requests[0], cert.adversary[t + 1]);
        }
    }

    #[test]
    fn ratio_grows_as_delta_shrinks() {
        // Average the certificate ratio of augmented MtC over several
        // coins; halving δ should increase it clearly.
        let ratio_for = |delta: f64| -> f64 {
            let p = params(delta, 1, 1, 3);
            let mut acc = 0.0;
            let runs = 8;
            for seed in 0..runs {
                let cert = build_thm2::<1>(&p, seed);
                let mut alg = MoveToCenter::new();
                let res = run(&cert.instance, &mut alg, delta, ServingOrder::MoveFirst);
                acc += ratio_lower_bound(
                    res.total_cost(),
                    cert.adversary_cost(ServingOrder::MoveFirst),
                );
            }
            acc / runs as f64
        };
        let loose = ratio_for(1.0);
        let tight = ratio_for(0.25);
        assert!(tight > 1.3 * loose, "δ=1 → {loose:.3}, δ=0.25 → {tight:.3}");
    }

    #[test]
    fn ratio_grows_with_rmax_over_rmin() {
        let ratio_for = |r_max: usize| -> f64 {
            let p = params(0.5, 1, r_max, 3);
            let mut acc = 0.0;
            let runs = 8;
            for seed in 0..runs {
                let cert = build_thm2::<1>(&p, seed);
                let mut alg = MoveToCenter::new();
                let res = run(&cert.instance, &mut alg, 0.5, ServingOrder::MoveFirst);
                acc += ratio_lower_bound(
                    res.total_cost(),
                    cert.adversary_cost(ServingOrder::MoveFirst),
                );
            }
            acc / runs as f64
        };
        let even = ratio_for(1);
        let skewed = ratio_for(8);
        assert!(
            skewed > 1.5 * even,
            "Rmax=1 → {even:.3}, Rmax=8 → {skewed:.3}"
        );
    }

    #[test]
    fn rotating_variant_changes_direction_between_cycles() {
        let p = params(0.5, 1, 1, 4);
        let cert = build_thm2_rotating::<2>(&p, 3);
        let x = p.phase_len();
        let c = p.chase_len();
        // Direction of cycle k = normalized first displacement of cycle k.
        let dir_of = |k: usize| {
            let base = k * (x + c);
            (cert.adversary[base + 1] - cert.adversary[base])
                .normalized()
                .unwrap()
        };
        let d0 = dir_of(0);
        let any_different = (1..4).any(|k| dir_of(k).distance(&d0) > 1e-6);
        assert!(any_different, "all cycles escaped in the same direction");
    }

    #[test]
    fn rotating_variant_feasible_and_ratio_grows_with_small_delta() {
        let ratio_for = |delta: f64| -> f64 {
            let p = params(delta, 1, 1, 3);
            let mut acc = 0.0;
            for seed in 0..6 {
                let cert = build_thm2_rotating::<2>(&p, seed);
                let mut alg = MoveToCenter::new();
                let res = run(&cert.instance, &mut alg, delta, ServingOrder::MoveFirst);
                acc += ratio_lower_bound(
                    res.total_cost(),
                    cert.adversary_cost(ServingOrder::MoveFirst),
                );
            }
            acc / 6.0
        };
        assert!(ratio_for(0.25) > 1.3 * ratio_for(1.0));
    }

    #[test]
    #[should_panic(expected = "dimension ≥ 2")]
    fn rotating_variant_rejects_the_line() {
        let p = params(0.5, 1, 1, 1);
        let _ = build_thm2_rotating::<1>(&p, 0);
    }

    #[test]
    #[should_panic(expected = "δ ∈ (0, 1]")]
    fn rejects_zero_delta() {
        let p = params(0.0, 1, 1, 1);
        let _ = build_thm2::<1>(&p, 0);
    }

    #[test]
    #[should_panic(expected = "R_max ≥ R_min")]
    fn rejects_inverted_request_bounds() {
        let p = params(0.5, 4, 2, 1);
        let _ = build_thm2::<1>(&p, 0);
    }
}
