//! Theorem 3 construction: `Ω(r/D)` for the Answer-First variant.
//!
//! Two-step cycles. Step 1: `r` requests at the common anchor; the
//! adversary then slips `m` left or right (fresh oblivious coin). Step 2:
//! `r` requests at the adversary's new position. Under Answer-First the
//! online algorithm must serve step 2 from wherever it stood *before*
//! learning the direction, paying `r·m` with probability ½, while the
//! adversary pays only `D·m` for its single move (its own requests are
//! always on its pre-move position, served free under Answer-First).

use crate::certificate::Certificate;
use msp_core::model::{Instance, Step};
use msp_geometry::sample::SeededSampler;
use msp_geometry::Point;

/// Parameters of the Theorem 3 adversary.
#[derive(Clone, Copy, Debug)]
pub struct Thm3Params {
    /// Fixed number of requests per step.
    pub r: usize,
    /// Movement cost weight `D`.
    pub d: f64,
    /// Movement limit `m`.
    pub m: f64,
    /// Number of two-step cycles.
    pub cycles: usize,
}

impl Thm3Params {
    /// Horizon `2 · cycles`.
    pub fn horizon(&self) -> usize {
        2 * self.cycles
    }
}

/// Builds the Theorem 3 instance and adversary trajectory; one oblivious
/// coin per cycle.
pub fn build_thm3<const N: usize>(params: &Thm3Params, seed: u64) -> Certificate<N> {
    assert!(params.r >= 1, "need at least one request per step");
    assert!(params.cycles >= 1, "need at least one cycle");
    let mut sampler = SeededSampler::new(seed);

    let start = Point::<N>::origin();
    let mut adversary = vec![start];
    let mut steps = Vec::with_capacity(params.horizon());
    let mut pos = start;

    for _ in 0..params.cycles {
        let anchor = pos;
        let sign = if sampler.coin() { 1.0 } else { -1.0 };
        let mut dir = Point::<N>::origin();
        dir[0] = sign;

        // Step 1: requests at the anchor; the adversary slips away. Under
        // Answer-First it serves them from the anchor (free), then moves.
        pos += dir * params.m;
        steps.push(Step::repeated(anchor, params.r));
        adversary.push(pos);

        // Step 2: requests at the adversary's new position; it stays.
        steps.push(Step::repeated(pos, params.r));
        adversary.push(pos);
    }

    let instance = Instance::new(params.d, params.m, start, steps);
    Certificate::new(instance, adversary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_core::cost::ServingOrder;
    use msp_core::mtc::MoveToCenter;
    use msp_core::ratio::ratio_lower_bound;
    use msp_core::simulator::run;

    fn params(r: usize, d: f64, cycles: usize) -> Thm3Params {
        Thm3Params {
            r,
            d,
            m: 1.0,
            cycles,
        }
    }

    #[test]
    fn adversary_pays_only_the_move_under_answer_first() {
        let p = params(10, 3.0, 5);
        let cert = build_thm3::<1>(&p, 4);
        let cost = cert.adversary_cost(ServingOrder::AnswerFirst);
        // One move of m per cycle, all requests served from the pre-move
        // position at distance 0.
        assert!(
            (cost - 5.0 * 3.0 * 1.0).abs() < 1e-9,
            "expected 15, got {cost}"
        );
    }

    #[test]
    fn fixed_request_count_throughout() {
        let p = params(7, 1.0, 4);
        let cert = build_thm3::<2>(&p, 1);
        assert!(cert.instance.has_fixed_request_count(7));
        assert_eq!(cert.horizon(), 8);
    }

    #[test]
    fn ratio_scales_with_r_over_d() {
        let ratio_for = |r: usize, d: f64| -> f64 {
            let p = params(r, d, 6);
            let mut acc = 0.0;
            let runs = 8;
            for seed in 0..runs {
                let cert = build_thm3::<1>(&p, seed);
                let mut alg = MoveToCenter::new();
                // Even generous augmentation cannot save Answer-First.
                let res = run(&cert.instance, &mut alg, 1.0, ServingOrder::AnswerFirst);
                acc += ratio_lower_bound(
                    res.total_cost(),
                    cert.adversary_cost(ServingOrder::AnswerFirst),
                );
            }
            acc / runs as f64
        };
        let small = ratio_for(2, 2.0); // r/D = 1
        let large = ratio_for(16, 2.0); // r/D = 8
        assert!(
            large > 2.0 * small,
            "r/D=1 → {small:.3}, r/D=8 → {large:.3}"
        );
    }

    #[test]
    fn anchor_chains_across_cycles() {
        let p = params(1, 1.0, 3);
        let cert = build_thm3::<1>(&p, 9);
        // Step 3 (second cycle, first step) requests sit on the adversary's
        // position after cycle 1.
        assert_eq!(cert.instance.steps[2].requests[0], cert.adversary[2]);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn rejects_zero_requests() {
        let p = params(0, 1.0, 1);
        let _ = build_thm3::<1>(&p, 0);
    }
}
