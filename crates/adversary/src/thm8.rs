//! Theorem 8 construction: `Ω(√T·ε/(1+ε))` in the Moving-Client variant
//! when the agent is faster than the server (`m_a = (1+ε)·m_s`).
//!
//! Phase 1 (`⌈x·(1+ε)⌉` rounds): the adversary's server runs away at full
//! speed `m_s` in a coin direction while the agent idles at the origin,
//! sprinting (speed `m_a`) to the adversary's position only during the
//! last `x` rounds. Phase 2: agent and adversary march on together at
//! speed `m_s`. An online server that guessed wrong is `x·ε·m_s` behind
//! and — being slower than the agent was — can close the gap only at rate
//! `0` relative to a target that now moves at its own top speed; it drags
//! the gap forever.

use crate::certificate::Certificate;
use msp_core::moving_client::{AgentWalk, MovingClientInstance};
use msp_geometry::sample::SeededSampler;
use msp_geometry::Point;

/// Parameters of the Theorem 8 adversary.
#[derive(Clone, Copy, Debug)]
pub struct Thm8Params {
    /// Horizon `T`.
    pub horizon: usize,
    /// Movement cost weight `D`.
    pub d: f64,
    /// Server speed `m_s`.
    pub ms: f64,
    /// Agent speed surplus: `m_a = (1+ε)·m_s`, `ε > 0`.
    pub epsilon: f64,
    /// Sprint-phase length `x`; `None` uses the proof's `⌈√(T·m_s/m_a)⌉`.
    pub x: Option<usize>,
}

impl Thm8Params {
    /// Agent speed `m_a`.
    pub fn ma(&self) -> f64 {
        (1.0 + self.epsilon) * self.ms
    }

    /// The sprint-phase length actually used.
    pub fn sprint_len(&self) -> usize {
        self.x
            .unwrap_or_else(|| (self.horizon as f64 / (1.0 + self.epsilon)).sqrt().ceil() as usize)
            .max(1)
    }

    /// Separation-phase length `⌈x·(1+ε)⌉ = ⌈x·m_a/m_s⌉`.
    pub fn phase1_len(&self) -> usize {
        (self.sprint_len() as f64 * (1.0 + self.epsilon)).ceil() as usize
    }
}

/// The Theorem 8 output: the Moving-Client instance plus the certificate
/// over its lowering to the base model.
#[derive(Clone, Debug)]
pub struct Thm8Output<const N: usize> {
    /// The variant-level instance (agent walk validated against `m_a`).
    pub moving_client: MovingClientInstance<N>,
    /// Certificate over the lowered instance: the adversary's server
    /// trajectory, feasible for `m_s`.
    pub certificate: Certificate<N>,
}

/// Builds the Theorem 8 instance; the single oblivious coin picks the
/// escape direction.
pub fn build_thm8<const N: usize>(params: &Thm8Params, seed: u64) -> Thm8Output<N> {
    assert!(params.epsilon > 0.0, "ε must be positive");
    assert!(params.horizon >= 2, "horizon too short");
    let mut sampler = SeededSampler::new(seed);
    let sign = if sampler.coin() { 1.0 } else { -1.0 };
    let mut dir = Point::<N>::origin();
    dir[0] = sign;

    let ms = params.ms;
    let ma = params.ma();
    let x = params.sprint_len();
    let phase1 = params.phase1_len().min(params.horizon);
    let start = Point::<N>::origin();

    // Adversary server: full speed in the coin direction, every round.
    let mut adversary = Vec::with_capacity(params.horizon + 1);
    adversary.push(start);
    for t in 1..=params.horizon {
        adversary.push(dir * (ms * t as f64));
    }

    // Agent: idle, then sprint to the adversary, then ride along. Using
    // `from_fn` clamps each hop to m_a, so the walk is valid even when the
    // ceilings above leave fractional slack.
    let sprint_start = phase1.saturating_sub(x);
    let adversary_at = |t: usize| adversary[t];
    let agent = AgentWalk::from_fn(start, params.horizon, ma, |t_idx, prev| {
        let t = t_idx + 1; // rounds are 1-based
        if t <= sprint_start {
            *prev // idle at the origin
        } else {
            adversary_at(t) // chase / ride the adversary (clamped to m_a)
        }
    });

    let moving_client = MovingClientInstance::new(params.d, ms, agent);
    let instance = moving_client.to_instance();
    let certificate = Certificate::new(instance, adversary);
    Thm8Output {
        moving_client,
        certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_core::cost::ServingOrder;
    use msp_core::mtc::MoveToCenter;
    use msp_core::ratio::ratio_lower_bound;
    use msp_core::simulator::run;

    fn params(t: usize, eps: f64) -> Thm8Params {
        Thm8Params {
            horizon: t,
            d: 1.0,
            ms: 1.0,
            epsilon: eps,
            x: None,
        }
    }

    #[test]
    fn agent_respects_its_speed_limit() {
        let p = params(200, 0.5);
        let out = build_thm8::<1>(&p, 3);
        assert!((out.moving_client.agent.max_speed() - 1.5).abs() < 1e-12);
        // AgentWalk::from_fn validated the walk internally; re-check one
        // displacement by hand.
        let pos = out.moving_client.agent.positions();
        for w in pos.windows(2) {
            assert!(w[0].distance(&w[1]) <= 1.5 + 1e-9);
        }
    }

    #[test]
    fn agent_catches_adversary_by_end_of_phase_one() {
        let p = params(400, 1.0);
        let out = build_thm8::<1>(&p, 1);
        let phase1 = p.phase1_len();
        let gap = out.moving_client.agent.positions()[phase1 - 1]
            .distance(&out.certificate.adversary[phase1]);
        assert!(gap <= p.ma() + 1e-9, "agent still {gap} away after phase 1");
    }

    #[test]
    fn adversary_serves_for_free_in_phase_two() {
        let p = params(300, 0.5);
        let out = build_thm8::<1>(&p, 2);
        let phase1 = p.phase1_len();
        // In phase 2 the agent rides exactly on the adversary.
        for t in (phase1 + 1)..=p.horizon {
            let agent = out.moving_client.agent.positions()[t - 1];
            assert!(agent.distance(&out.certificate.adversary[t]) < 1e-9);
        }
    }

    #[test]
    fn ratio_grows_with_horizon_for_fast_agent() {
        let ratio_at = |t: usize| -> f64 {
            let p = params(t, 1.0);
            let mut acc = 0.0;
            let runs = 6;
            for seed in 0..runs {
                let out = build_thm8::<1>(&p, seed);
                let mut alg = MoveToCenter::new();
                let res = run(
                    &out.certificate.instance,
                    &mut alg,
                    0.0,
                    ServingOrder::MoveFirst,
                );
                acc += ratio_lower_bound(
                    res.total_cost(),
                    out.certificate.adversary_cost(ServingOrder::MoveFirst),
                );
            }
            acc / runs as f64
        };
        let small = ratio_at(100);
        let large = ratio_at(1600);
        assert!(
            large > 1.5 * small,
            "T=100 → {small:.2}, T=1600 → {large:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "ε must be positive")]
    fn rejects_non_positive_epsilon() {
        let p = params(10, 0.0);
        let _ = build_thm8::<1>(&p, 0);
    }
}
