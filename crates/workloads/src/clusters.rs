//! Cluster-mixture workload with regime switches.
//!
//! Demand concentrates at a few well-separated sites (say, data consumers
//! in different districts) and occasionally jumps between them. The jump
//! distance relative to the movement budget `m` is what separates a page
//! that can "follow" demand from one that must absorb long service costs
//! while in transit — the regime the paper's potential analysis is really
//! about.

use msp_core::model::{Instance, Step};
use msp_geometry::sample::SeededSampler;
use msp_geometry::Point;

use crate::counts::RequestCount;
use crate::StepSource;

/// Configuration of the cluster-mixture generator.
#[derive(Clone, Copy, Debug)]
pub struct ClusterMixtureConfig<const N: usize> {
    /// Horizon `T`.
    pub horizon: usize,
    /// Movement cost weight `D` of the produced instance.
    pub d: f64,
    /// Server movement limit `m` of the produced instance.
    pub max_move: f64,
    /// Number of cluster sites.
    pub sites: usize,
    /// Half-width of the box the sites are scattered in.
    pub arena_half_width: f64,
    /// Gaussian spread of requests around the active site.
    pub spread: f64,
    /// Probability per step of switching to a uniformly random other site.
    pub switch_probability: f64,
    /// Per-step request counts.
    pub count: RequestCount,
}

impl<const N: usize> Default for ClusterMixtureConfig<N> {
    fn default() -> Self {
        ClusterMixtureConfig {
            horizon: 1000,
            d: 4.0,
            max_move: 1.0,
            sites: 4,
            arena_half_width: 30.0,
            spread: 0.8,
            switch_probability: 0.01,
            count: RequestCount::Fixed(3),
        }
    }
}

/// The generator object (see [`ClusterMixtureConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct ClusterMixture<const N: usize> {
    /// Configuration used by [`ClusterMixture::generate`].
    pub config: ClusterMixtureConfig<N>,
}

impl<const N: usize> ClusterMixture<N> {
    /// Creates the generator.
    pub fn new(config: ClusterMixtureConfig<N>) -> Self {
        config.count.validate();
        assert!(config.sites >= 1, "need at least one site");
        assert!(
            (0.0..=1.0).contains(&config.switch_probability),
            "switch probability ∈ [0,1]"
        );
        ClusterMixture { config }
    }

    /// Generates an instance from `seed`; the steps are the first
    /// `horizon` pulls of [`ClusterMixtureStream`].
    pub fn generate(&self, seed: u64) -> Instance<N> {
        let c = &self.config;
        let mut stream = ClusterMixtureStream::new(self.config, seed);
        let steps = (0..c.horizon).map(|_| stream.next_step()).collect();
        Instance::new(c.d, c.max_move, Point::origin(), steps)
    }

    /// Opens the workload as an unbounded [`StepSource`].
    pub fn stream(&self, seed: u64) -> ClusterMixtureStream<N> {
        ClusterMixtureStream::new(self.config, seed)
    }
}

/// Incremental state of the cluster-mixture workload: memory is O(sites),
/// independent of the number of steps pulled.
#[derive(Clone, Debug)]
pub struct ClusterMixtureStream<const N: usize> {
    config: ClusterMixtureConfig<N>,
    sampler: SeededSampler,
    sites: Vec<Point<N>>,
    active: usize,
    t: usize,
}

impl<const N: usize> ClusterMixtureStream<N> {
    /// Opens the stream (same validation as [`ClusterMixture::new`]).
    pub fn new(config: ClusterMixtureConfig<N>, seed: u64) -> Self {
        let _ = ClusterMixture::new(config); // validate
        let mut sampler = SeededSampler::new(seed);
        let sites: Vec<Point<N>> = (0..config.sites)
            .map(|_| sampler.point_in_cube(config.arena_half_width))
            .collect();
        let active = sampler.int_inclusive(0, config.sites - 1);
        ClusterMixtureStream {
            config,
            sampler,
            sites,
            active,
            t: 0,
        }
    }
}

impl<const N: usize> StepSource<N> for ClusterMixtureStream<N> {
    fn next_step(&mut self) -> Step<N> {
        let c = &self.config;
        let s = &mut self.sampler;
        if c.sites > 1 && s.uniform(0.0, 1.0) < c.switch_probability {
            // Jump to a different site.
            let mut next = s.int_inclusive(0, c.sites - 2);
            if next >= self.active {
                next += 1;
            }
            self.active = next;
        }
        let r = c.count.draw(self.t, s);
        self.t += 1;
        let requests = (0..r)
            .map(|_| s.gaussian_point(&self.sites[self.active], c.spread))
            .collect();
        Step::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterMixtureConfig<2> {
        ClusterMixtureConfig {
            horizon: 400,
            ..Default::default()
        }
    }

    #[test]
    fn stream_reproduces_generate_exactly() {
        let g = ClusterMixture::new(ClusterMixtureConfig {
            horizon: 150,
            switch_probability: 0.05,
            ..cfg()
        });
        let inst = g.generate(31);
        let mut stream = g.stream(31);
        for (t, step) in inst.steps.iter().enumerate() {
            assert_eq!(stream.next_step().requests, step.requests, "step {t}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = ClusterMixture::new(cfg());
        let a = g.generate(1);
        let b = g.generate(1);
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa.requests, sb.requests);
        }
    }

    #[test]
    fn single_site_never_switches() {
        let mut config = cfg();
        config.sites = 1;
        config.switch_probability = 1.0;
        config.spread = 0.1;
        let g = ClusterMixture::new(config);
        let inst = g.generate(2);
        // All requests huddle around one point.
        let anchor = inst.steps[0].requests[0];
        for step in &inst.steps {
            for v in &step.requests {
                assert!(v.distance(&anchor) < 5.0);
            }
        }
    }

    #[test]
    fn switching_produces_multiple_regimes() {
        let mut config = cfg();
        config.switch_probability = 0.1;
        config.spread = 0.01;
        config.sites = 4;
        let g = ClusterMixture::new(config);
        let inst = g.generate(3);
        // Count distinct rough request locations (rounded to 1 unit).
        let mut locs: Vec<(i64, i64)> = inst
            .steps
            .iter()
            .flat_map(|s| s.requests.iter())
            .map(|v| (v[0].round() as i64, v[1].round() as i64))
            .collect();
        locs.sort_unstable();
        locs.dedup();
        assert!(locs.len() >= 2, "never switched site");
    }

    #[test]
    fn respects_bursty_counts() {
        let mut config = cfg();
        config.count = RequestCount::Bursty {
            base: 1,
            burst: 6,
            period: 10,
        };
        let g = ClusterMixture::new(config);
        let inst = g.generate(4);
        assert_eq!(inst.request_bounds(), (1, 6));
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn rejects_zero_sites() {
        let mut config = cfg();
        config.sites = 0;
        let _ = ClusterMixture::new(config);
    }
}
