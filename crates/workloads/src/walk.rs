//! Random-walk request workload.
//!
//! A single demand point performs a bounded random walk; each step it
//! issues `r_t` requests at (or tightly around) its position. This is the
//! canonical 1-D workload for the Theorem 4 line experiments — the exact
//! PWL solver prices it, and MtC's ratio can be watched as the walk speed
//! crosses the server budget.

use msp_core::model::{Instance, Step};
use msp_geometry::sample::SeededSampler;
use msp_geometry::Point;

use crate::counts::RequestCount;
use crate::StepSource;

/// Configuration of the random-walk generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkConfig<const N: usize> {
    /// Horizon `T`.
    pub horizon: usize,
    /// Movement cost weight `D` of the produced instance.
    pub d: f64,
    /// Server movement limit `m` of the produced instance.
    pub max_move: f64,
    /// Walk step length per round (relative to `m`, this sets difficulty).
    pub walk_speed: f64,
    /// Probability of re-drawing the walk direction each step; 0 walks a
    /// straight line, 1 is a fresh direction every step.
    pub turn_probability: f64,
    /// Gaussian spread of requests around the walker (0 = exactly on it).
    pub spread: f64,
    /// Per-step request counts.
    pub count: RequestCount,
}

impl<const N: usize> Default for RandomWalkConfig<N> {
    fn default() -> Self {
        RandomWalkConfig {
            horizon: 1000,
            d: 2.0,
            max_move: 1.0,
            walk_speed: 0.8,
            turn_probability: 0.2,
            spread: 0.0,
            count: RequestCount::Fixed(1),
        }
    }
}

/// The generator object (see [`RandomWalkConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct RandomWalk<const N: usize> {
    /// Configuration used by [`RandomWalk::generate`].
    pub config: RandomWalkConfig<N>,
}

impl<const N: usize> RandomWalk<N> {
    /// Creates the generator.
    pub fn new(config: RandomWalkConfig<N>) -> Self {
        config.count.validate();
        assert!(config.walk_speed >= 0.0, "walk speed must be non-negative");
        assert!(
            (0.0..=1.0).contains(&config.turn_probability),
            "turn probability ∈ [0,1]"
        );
        RandomWalk { config }
    }

    /// Generates an instance from `seed`; the steps are the first
    /// `horizon` pulls of [`RandomWalkStream`].
    pub fn generate(&self, seed: u64) -> Instance<N> {
        let c = &self.config;
        let mut stream = RandomWalkStream::new(self.config, seed);
        let steps = (0..c.horizon).map(|_| stream.next_step()).collect();
        Instance::new(c.d, c.max_move, Point::origin(), steps)
    }

    /// Opens the workload as an unbounded [`StepSource`].
    pub fn stream(&self, seed: u64) -> RandomWalkStream<N> {
        RandomWalkStream::new(self.config, seed)
    }
}

/// Incremental state of the random-walk workload: O(1) memory in the
/// number of steps pulled.
#[derive(Clone, Debug)]
pub struct RandomWalkStream<const N: usize> {
    config: RandomWalkConfig<N>,
    sampler: SeededSampler,
    pos: Point<N>,
    dir: Point<N>,
    t: usize,
}

impl<const N: usize> RandomWalkStream<N> {
    /// Opens the stream (same validation as [`RandomWalk::new`]).
    pub fn new(config: RandomWalkConfig<N>, seed: u64) -> Self {
        let _ = RandomWalk::new(config); // validate
        let mut sampler = SeededSampler::new(seed);
        let dir = sampler.unit_vector();
        RandomWalkStream {
            config,
            sampler,
            pos: Point::origin(),
            dir,
            t: 0,
        }
    }
}

impl<const N: usize> StepSource<N> for RandomWalkStream<N> {
    fn next_step(&mut self) -> Step<N> {
        let c = &self.config;
        let s = &mut self.sampler;
        if s.uniform(0.0, 1.0) < c.turn_probability {
            self.dir = s.unit_vector();
        }
        self.pos += self.dir * c.walk_speed;
        let r = c.count.draw(self.t, s);
        self.t += 1;
        let pos = self.pos;
        let requests = (0..r)
            .map(|_| {
                if c.spread == 0.0 {
                    pos
                } else {
                    s.gaussian_point(&pos, c.spread)
                }
            })
            .collect();
        Step::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp_geometry::P1;

    #[test]
    fn stream_reproduces_generate_exactly() {
        let g = RandomWalk::new(RandomWalkConfig::<2> {
            horizon: 120,
            spread: 0.4,
            count: RequestCount::Uniform { lo: 1, hi: 3 },
            ..Default::default()
        });
        let inst = g.generate(23);
        let mut stream = g.stream(23);
        for (t, step) in inst.steps.iter().enumerate() {
            assert_eq!(stream.next_step().requests, step.requests, "step {t}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = RandomWalk::new(RandomWalkConfig::<1> {
            horizon: 100,
            ..Default::default()
        });
        let a = g.generate(5);
        let b = g.generate(5);
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa.requests, sb.requests);
        }
    }

    #[test]
    fn walker_moves_at_configured_speed() {
        let g = RandomWalk::new(RandomWalkConfig::<2> {
            horizon: 200,
            walk_speed: 0.5,
            spread: 0.0,
            count: RequestCount::Fixed(1),
            ..Default::default()
        });
        let inst = g.generate(6);
        let mut prev = inst.steps[0].requests[0];
        for step in &inst.steps[1..] {
            let cur = step.requests[0];
            assert!(prev.distance(&cur) <= 0.5 + 1e-9);
            prev = cur;
        }
    }

    #[test]
    fn one_dimensional_walk_stays_on_the_line() {
        let g = RandomWalk::new(RandomWalkConfig::<1> {
            horizon: 50,
            ..Default::default()
        });
        let inst = g.generate(7);
        // Trivially 1-D, but verify the request positions vary.
        let positions: Vec<f64> = inst.steps.iter().map(|s| s.requests[0].x()).collect();
        let spread = positions.iter().cloned().fold(f64::MIN, f64::max)
            - positions.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1.0, "walk did not move");
        let _: &P1 = &inst.steps[0].requests[0];
    }

    #[test]
    fn straight_line_with_zero_turn_probability() {
        let g = RandomWalk::new(RandomWalkConfig::<2> {
            horizon: 100,
            turn_probability: 0.0,
            walk_speed: 1.0,
            ..Default::default()
        });
        let inst = g.generate(8);
        let end = inst.steps[99].requests[0];
        assert!((end.norm() - 100.0).abs() < 1e-6, "turned despite p=0");
    }

    #[test]
    fn spread_scatters_requests() {
        let g = RandomWalk::new(RandomWalkConfig::<2> {
            horizon: 100,
            spread: 1.0,
            count: RequestCount::Fixed(4),
            ..Default::default()
        });
        let inst = g.generate(9);
        // Requests within a step should not all coincide.
        let step = &inst.steps[0];
        assert!(step.requests.windows(2).any(|w| w[0] != w[1]));
    }
}
