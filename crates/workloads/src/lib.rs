#![warn(missing_docs)]

//! Synthetic workloads for the Mobile Server Problem.
//!
//! The paper motivates the model with edge computing: data following users
//! around (drifting demand), embedded servers in autonomous cars (fleets
//! of mobile requesters), and ad-hoc disaster-response networks (the
//! Moving-Client variant). This crate turns those scenarios into seeded,
//! reproducible request-sequence generators:
//!
//! * [`counts`] — models for the per-step request count `r_t` (fixed,
//!   uniform range, bursty), controlling the `R_max/R_min` knob of
//!   Theorems 2 and 4.
//! * [`drift`] — a demand hotspot performing a speed-limited random walk
//!   inside an arena; requests scatter around it.
//! * [`agents`] — a fleet of random-waypoint agents (the autonomous-car
//!   picture); a random subset requests each step. Also produces single
//!   [`msp_core::moving_client::AgentWalk`]s for the Moving-Client
//!   variant.
//! * [`clusters`] — a Gaussian mixture with regime switches: demand jumps
//!   between well-separated sites, stressing the server's catch-up
//!   behaviour.
//! * [`walk`] — a single request point on a bounded random walk, the
//!   canonical line workload for the Theorem 4 (1-D) experiments.
//!
//! Every generator takes an explicit seed and derives sub-streams via
//! [`msp_geometry::sample::SeededSampler::derive_seed`], so experiment
//! cells are independently replayable.

pub mod agents;
pub mod clusters;
pub mod counts;
pub mod drift;
pub mod walk;

use msp_core::model::Step;

/// A pull-based, unbounded source of request steps.
///
/// Every workload generator exposes a `*Stream` implementing this trait;
/// `generate` is just "pull `horizon` steps and collect". Streaming
/// consumers (the scenario engine's `RequestStream` adapters, the
/// streaming simulator) pull steps one at a time instead, so horizons are
/// bounded by patience, not RAM. Sources are infinite — truncation is the
/// caller's job — and deterministic per seed: pulling `T` steps yields
/// exactly the first `T` steps of `generate(seed)` for every longer
/// horizon (the sampler draws are sequential per step).
pub trait StepSource<const N: usize> {
    /// Produces the next step of the workload.
    fn next_step(&mut self) -> Step<N>;
}

pub use agents::{AgentFleet, AgentFleetConfig, AgentFleetStream};
pub use clusters::{ClusterMixture, ClusterMixtureConfig, ClusterMixtureStream};
pub use counts::RequestCount;
pub use drift::{DriftingHotspot, DriftingHotspotConfig, DriftingHotspotStream};
pub use walk::{RandomWalk, RandomWalkConfig, RandomWalkStream};
