//! Per-step request-count models.
//!
//! Theorems 2 and 4 expose the ratio `R_max/R_min` as the price of
//! fluctuating request volume; these models generate `r_t` streams with a
//! controlled ratio.

use msp_geometry::sample::SeededSampler;

/// How many requests arrive per step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RequestCount {
    /// Exactly `r` requests every step (the fixed-`r` setting of
    /// Sections 4.1–4.2).
    Fixed(usize),
    /// Uniformly random in `[lo, hi]` per step.
    Uniform {
        /// Minimum per-step count (≥ 1 keeps `R_min ≥ 1`).
        lo: usize,
        /// Maximum per-step count.
        hi: usize,
    },
    /// `base` requests normally; every `period`-th step brings `burst`.
    Bursty {
        /// Quiet-step count.
        base: usize,
        /// Burst-step count.
        burst: usize,
        /// Distance between bursts (in steps, ≥ 1).
        period: usize,
    },
}

impl RequestCount {
    /// Draws the request count for step `t`.
    pub fn draw(&self, t: usize, sampler: &mut SeededSampler) -> usize {
        match *self {
            RequestCount::Fixed(r) => r,
            RequestCount::Uniform { lo, hi } => sampler.int_inclusive(lo, hi),
            RequestCount::Bursty {
                base,
                burst,
                period,
            } => {
                if (t + 1).is_multiple_of(period.max(1)) {
                    burst
                } else {
                    base
                }
            }
        }
    }

    /// The `(R_min, R_max)` bounds this model can produce.
    pub fn bounds(&self) -> (usize, usize) {
        match *self {
            RequestCount::Fixed(r) => (r, r),
            RequestCount::Uniform { lo, hi } => (lo, hi),
            RequestCount::Bursty { base, burst, .. } => (base.min(burst), base.max(burst)),
        }
    }

    /// Validates the model (positive counts, ordered ranges).
    ///
    /// # Panics
    /// Panics on a model that could produce zero-request "minimum" steps
    /// while claiming a positive `R_min`, or inverted ranges.
    pub fn validate(&self) {
        match *self {
            RequestCount::Fixed(r) => assert!(r >= 1, "fixed count must be ≥ 1"),
            RequestCount::Uniform { lo, hi } => {
                assert!(lo >= 1, "R_min must be ≥ 1");
                assert!(lo <= hi, "range inverted");
            }
            RequestCount::Bursty {
                base,
                burst,
                period,
            } => {
                assert!(base >= 1 && burst >= 1, "counts must be ≥ 1");
                assert!(period >= 1, "period must be ≥ 1");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut s = SeededSampler::new(1);
        let m = RequestCount::Fixed(3);
        m.validate();
        for t in 0..20 {
            assert_eq!(m.draw(t, &mut s), 3);
        }
        assert_eq!(m.bounds(), (3, 3));
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut s = SeededSampler::new(2);
        let m = RequestCount::Uniform { lo: 2, hi: 5 };
        m.validate();
        let mut seen = [false; 6];
        for t in 0..500 {
            let r = m.draw(t, &mut s);
            assert!((2..=5).contains(&r));
            seen[r] = true;
        }
        assert!(seen[2] && seen[3] && seen[4] && seen[5]);
    }

    #[test]
    fn bursty_fires_on_period() {
        let mut s = SeededSampler::new(3);
        let m = RequestCount::Bursty {
            base: 1,
            burst: 10,
            period: 4,
        };
        m.validate();
        let counts: Vec<usize> = (0..8).map(|t| m.draw(t, &mut s)).collect();
        assert_eq!(counts, vec![1, 1, 1, 10, 1, 1, 1, 10]);
        assert_eq!(m.bounds(), (1, 10));
    }

    #[test]
    #[should_panic(expected = "R_min must be ≥ 1")]
    fn uniform_rejects_zero_lo() {
        RequestCount::Uniform { lo: 0, hi: 3 }.validate();
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn uniform_rejects_inverted() {
        RequestCount::Uniform { lo: 5, hi: 3 }.validate();
    }
}
