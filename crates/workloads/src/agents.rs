//! Mobile-agent workloads: fleets of random-waypoint movers.
//!
//! The autonomous-car motivation: `k` agents drive around an arena using
//! the random-waypoint mobility model (pick a destination, drive to it at
//! bounded speed, pick the next), and each step a random subset of them
//! requests data. The same machinery yields single-agent walks for the
//! Moving-Client variant of Section 5 (the disaster-response scenario).

use crate::StepSource;
use msp_core::model::{Instance, Step};
use msp_core::moving_client::AgentWalk;
use msp_geometry::sample::SeededSampler;
use msp_geometry::{step_towards, Aabb, Point};

/// Configuration of the agent-fleet generator.
#[derive(Clone, Copy, Debug)]
pub struct AgentFleetConfig<const N: usize> {
    /// Horizon `T`.
    pub horizon: usize,
    /// Movement cost weight `D` of the produced instance.
    pub d: f64,
    /// Server movement limit `m` of the produced instance.
    pub max_move: f64,
    /// Number of agents in the fleet.
    pub agents: usize,
    /// Agent driving speed per step.
    pub agent_speed: f64,
    /// Arena half-width for waypoints.
    pub arena_half_width: f64,
    /// Probability that an agent issues a request in a given step.
    pub request_probability: f64,
}

impl<const N: usize> Default for AgentFleetConfig<N> {
    fn default() -> Self {
        AgentFleetConfig {
            horizon: 1000,
            d: 4.0,
            max_move: 1.0,
            agents: 8,
            agent_speed: 0.8,
            arena_half_width: 20.0,
            request_probability: 0.5,
        }
    }
}

/// The generator object (see [`AgentFleetConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct AgentFleet<const N: usize> {
    /// Configuration used by [`AgentFleet::generate`].
    pub config: AgentFleetConfig<N>,
}

#[derive(Clone, Debug)]
struct Mover<const N: usize> {
    position: Point<N>,
    waypoint: Point<N>,
}

impl<const N: usize> AgentFleet<N> {
    /// Creates the generator.
    pub fn new(config: AgentFleetConfig<N>) -> Self {
        assert!(config.agents >= 1, "need at least one agent");
        assert!(
            (0.0..=1.0).contains(&config.request_probability),
            "request probability ∈ [0,1]"
        );
        assert!(config.agent_speed > 0.0, "agent speed must be positive");
        AgentFleet { config }
    }

    /// Generates the fleet instance from `seed`. Steps where no agent
    /// requests are silent (empty), so the per-step count varies in
    /// `[0, agents]` — the general setting of Theorem 4's extension. The
    /// steps are the first `horizon` pulls of [`AgentFleetStream`].
    pub fn generate(&self, seed: u64) -> Instance<N> {
        let c = &self.config;
        let mut stream = AgentFleetStream::new(self.config, seed);
        let steps = (0..c.horizon).map(|_| stream.next_step()).collect();
        Instance::new(c.d, c.max_move, Point::origin(), steps)
    }

    /// Opens the workload as an unbounded [`StepSource`].
    pub fn stream(&self, seed: u64) -> AgentFleetStream<N> {
        AgentFleetStream::new(self.config, seed)
    }
}

/// Incremental state of the agent-fleet workload: memory is O(agents),
/// independent of the number of steps pulled.
#[derive(Clone, Debug)]
pub struct AgentFleetStream<const N: usize> {
    config: AgentFleetConfig<N>,
    sampler: SeededSampler,
    arena: Aabb<N>,
    movers: Vec<Mover<N>>,
}

impl<const N: usize> AgentFleetStream<N> {
    /// Opens the stream (same validation as [`AgentFleet::new`]).
    pub fn new(config: AgentFleetConfig<N>, seed: u64) -> Self {
        let _ = AgentFleet::new(config); // validate
        let mut sampler = SeededSampler::new(seed);
        let movers: Vec<Mover<N>> = (0..config.agents)
            .map(|_| Mover {
                position: sampler.point_in_cube(config.arena_half_width),
                waypoint: sampler.point_in_cube(config.arena_half_width),
            })
            .collect();
        AgentFleetStream {
            arena: Aabb::cube(Point::origin(), config.arena_half_width),
            config,
            sampler,
            movers,
        }
    }
}

impl<const N: usize> StepSource<N> for AgentFleetStream<N> {
    fn next_step(&mut self) -> Step<N> {
        let c = &self.config;
        let s = &mut self.sampler;
        let mut requests = Vec::new();
        for mv in &mut self.movers {
            // Drive towards the waypoint; arrived → pick the next one.
            mv.position = step_towards(&mv.position, &mv.waypoint, c.agent_speed);
            if mv.position.distance(&mv.waypoint) < 1e-9 {
                mv.waypoint = s.point_in_cube(c.arena_half_width);
            }
            debug_assert!(self.arena.contains(&self.arena.clamp(&mv.position)));
            if s.uniform(0.0, 1.0) < c.request_probability {
                requests.push(mv.position);
            }
        }
        Step::new(requests)
    }
}

/// Builds a single random-waypoint [`AgentWalk`] for the Moving-Client
/// variant: an agent starting at the origin, driving between random
/// waypoints in a `half_width` arena at speed `max_speed`.
pub fn random_waypoint_walk<const N: usize>(
    horizon: usize,
    max_speed: f64,
    half_width: f64,
    seed: u64,
) -> AgentWalk<N> {
    let mut s = SeededSampler::new(seed);
    let mut waypoint: Point<N> = s.point_in_cube(half_width);
    AgentWalk::from_fn(Point::origin(), horizon, max_speed, move |_, prev| {
        if prev.distance(&waypoint) < 1e-9 {
            waypoint = s.point_in_cube(half_width);
        }
        waypoint
    })
}

/// Builds a straight-line "escape" walk: the agent marches in a fixed
/// random direction at full speed — the worst case for a slower server
/// (Theorem 8's deterministic core).
pub fn runaway_walk<const N: usize>(horizon: usize, max_speed: f64, seed: u64) -> AgentWalk<N> {
    let mut s = SeededSampler::new(seed);
    let dir: Point<N> = s.unit_vector();
    AgentWalk::from_fn(Point::origin(), horizon, max_speed, move |_, prev| {
        *prev + dir * (2.0 * max_speed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_reproduces_generate_exactly() {
        let g = AgentFleet::new(AgentFleetConfig::<2> {
            horizon: 150,
            agents: 6,
            ..Default::default()
        });
        let inst = g.generate(41);
        let mut stream = g.stream(41);
        for (t, step) in inst.steps.iter().enumerate() {
            assert_eq!(stream.next_step().requests, step.requests, "step {t}");
        }
    }

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let g = AgentFleet::new(AgentFleetConfig::<2> {
            horizon: 100,
            ..Default::default()
        });
        let a = g.generate(10);
        let b = g.generate(10);
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa.requests, sb.requests);
        }
    }

    #[test]
    fn request_counts_bounded_by_fleet_size() {
        let g = AgentFleet::new(AgentFleetConfig::<2> {
            horizon: 300,
            agents: 5,
            ..Default::default()
        });
        let inst = g.generate(3);
        let (_, hi) = inst.request_bounds();
        assert!(hi <= 5);
        assert!(inst.total_requests() > 0);
    }

    #[test]
    fn probability_one_means_all_agents_request() {
        let g = AgentFleet::new(AgentFleetConfig::<2> {
            horizon: 50,
            agents: 4,
            request_probability: 1.0,
            ..Default::default()
        });
        let inst = g.generate(7);
        assert!(inst.has_fixed_request_count(4));
    }

    #[test]
    fn probability_zero_means_silence() {
        let g = AgentFleet::new(AgentFleetConfig::<2> {
            horizon: 50,
            request_probability: 0.0,
            ..Default::default()
        });
        let inst = g.generate(7);
        assert_eq!(inst.total_requests(), 0);
    }

    #[test]
    fn agents_move_at_bounded_speed() {
        // Reconstruct agent paths implicitly: consecutive requests of the
        // same agent are ≤ speed apart only when we track them; instead
        // check requests stay inside the (slightly padded) arena.
        let half = 10.0;
        let g = AgentFleet::new(AgentFleetConfig::<2> {
            horizon: 400,
            arena_half_width: half,
            agent_speed: 0.5,
            ..Default::default()
        });
        let inst = g.generate(8);
        for step in &inst.steps {
            for v in &step.requests {
                assert!(v[0].abs() <= half + 1e-9 && v[1].abs() <= half + 1e-9);
            }
        }
    }

    #[test]
    fn random_waypoint_walk_is_speed_limited() {
        let w = random_waypoint_walk::<2>(500, 0.7, 15.0, 4);
        assert_eq!(w.horizon(), 500);
        let mut prev = w.start();
        let mut total = 0.0;
        for p in w.positions() {
            let d = prev.distance(p);
            assert!(d <= 0.7 + 1e-9);
            total += d;
            prev = *p;
        }
        assert!(total > 10.0, "agent barely moved: {total}");
    }

    #[test]
    fn runaway_walk_moves_at_full_speed_in_a_line() {
        let w = runaway_walk::<2>(100, 1.0, 11);
        let end = w.positions()[99];
        assert!(
            (end.norm() - 100.0).abs() < 1e-6,
            "did not run straight: {end:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn rejects_empty_fleet() {
        let _ = AgentFleet::new(AgentFleetConfig::<2> {
            agents: 0,
            ..Default::default()
        });
    }
}
