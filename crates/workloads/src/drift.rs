//! Drifting-hotspot workload: demand follows a slowly moving center.
//!
//! The edge-computing story of the paper's introduction — users
//! congregate, the crowd drifts, the data should follow. A hotspot center
//! performs a speed-limited random walk (with momentum) inside an arena;
//! each step, `r_t` requests scatter around the center with Gaussian
//! spread. The hotspot speed relative to the server budget `m` controls
//! how hard the instance is.

use msp_core::model::{Instance, Step};
use msp_geometry::sample::SeededSampler;
use msp_geometry::{Aabb, Point};

use crate::counts::RequestCount;
use crate::StepSource;

/// Configuration of the drifting-hotspot generator.
#[derive(Clone, Copy, Debug)]
pub struct DriftingHotspotConfig<const N: usize> {
    /// Horizon `T`.
    pub horizon: usize,
    /// Movement cost weight `D` of the produced instance.
    pub d: f64,
    /// Server movement limit `m` of the produced instance.
    pub max_move: f64,
    /// Hotspot drift per step (the crowd's speed).
    pub drift_speed: f64,
    /// Momentum of the drift direction in `[0, 1)`: 0 = fresh random
    /// direction each step, →1 = nearly straight-line motion.
    pub momentum: f64,
    /// Gaussian spread of requests around the center.
    pub spread: f64,
    /// Arena half-width (hotspot is reflected back inside).
    pub arena_half_width: f64,
    /// Per-step request counts.
    pub count: RequestCount,
}

impl<const N: usize> Default for DriftingHotspotConfig<N> {
    fn default() -> Self {
        DriftingHotspotConfig {
            horizon: 1000,
            d: 4.0,
            max_move: 1.0,
            drift_speed: 0.5,
            momentum: 0.8,
            spread: 0.5,
            arena_half_width: 50.0,
            count: RequestCount::Fixed(2),
        }
    }
}

/// The generator object (see [`DriftingHotspotConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct DriftingHotspot<const N: usize> {
    /// Configuration used by [`DriftingHotspot::generate`].
    pub config: DriftingHotspotConfig<N>,
}

impl<const N: usize> DriftingHotspot<N> {
    /// Creates the generator.
    pub fn new(config: DriftingHotspotConfig<N>) -> Self {
        config.count.validate();
        assert!(
            config.momentum >= 0.0 && config.momentum < 1.0,
            "momentum ∈ [0,1)"
        );
        assert!(
            config.drift_speed >= 0.0,
            "drift speed must be non-negative"
        );
        DriftingHotspot { config }
    }

    /// Generates an instance from `seed`. The same seed reproduces the
    /// same instance exactly; the steps are the first `horizon` pulls of
    /// [`DriftingHotspotStream`].
    pub fn generate(&self, seed: u64) -> Instance<N> {
        let c = &self.config;
        let mut stream = DriftingHotspotStream::new(self.config, seed);
        let steps = (0..c.horizon).map(|_| stream.next_step()).collect();
        Instance::new(c.d, c.max_move, Point::origin(), steps)
    }

    /// Opens the workload as an unbounded [`StepSource`].
    pub fn stream(&self, seed: u64) -> DriftingHotspotStream<N> {
        DriftingHotspotStream::new(self.config, seed)
    }
}

/// Incremental state of the drifting-hotspot workload: O(1) memory in the
/// number of steps pulled.
#[derive(Clone, Debug)]
pub struct DriftingHotspotStream<const N: usize> {
    config: DriftingHotspotConfig<N>,
    sampler: SeededSampler,
    arena: Aabb<N>,
    center: Point<N>,
    velocity: Point<N>,
    t: usize,
}

impl<const N: usize> DriftingHotspotStream<N> {
    /// Opens the stream (same validation as [`DriftingHotspot::new`]).
    pub fn new(config: DriftingHotspotConfig<N>, seed: u64) -> Self {
        let _ = DriftingHotspot::new(config); // validate
        let mut sampler = SeededSampler::new(seed);
        let velocity = sampler.unit_vector::<N>() * config.drift_speed;
        DriftingHotspotStream {
            arena: Aabb::cube(Point::origin(), config.arena_half_width),
            config,
            sampler,
            center: Point::origin(),
            velocity,
            t: 0,
        }
    }
}

impl<const N: usize> StepSource<N> for DriftingHotspotStream<N> {
    fn next_step(&mut self) -> Step<N> {
        let c = &self.config;
        let s = &mut self.sampler;
        // Momentum walk: blend the previous direction with a fresh one.
        let fresh: Point<N> = s.unit_vector::<N>() * c.drift_speed;
        self.velocity = self.velocity * c.momentum + fresh * (1.0 - c.momentum);
        // Cap the drift speed (momentum blending can only shrink the
        // norm, but keep the invariant explicit).
        if self.velocity.norm() > c.drift_speed {
            self.velocity = self.velocity * (c.drift_speed / self.velocity.norm());
        }
        self.center += self.velocity;
        let clamped = self.arena.clamp(&self.center);
        if clamped != self.center {
            // Bounce: reflect the velocity away from the wall.
            self.velocity = -self.velocity;
            self.center = clamped;
        }

        let r = c.count.draw(self.t, s);
        self.t += 1;
        let requests = (0..r)
            .map(|_| s.gaussian_point(&self.center, c.spread))
            .collect();
        Step::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftingHotspotConfig<2> {
        DriftingHotspotConfig {
            horizon: 200,
            ..Default::default()
        }
    }

    #[test]
    fn stream_reproduces_generate_exactly() {
        let g = DriftingHotspot::new(cfg());
        let inst = g.generate(17);
        let mut stream = g.stream(17);
        for (t, step) in inst.steps.iter().enumerate() {
            assert_eq!(stream.next_step().requests, step.requests, "step {t}");
        }
        // The stream keeps going past the configured horizon.
        let _ = stream.next_step();
    }

    #[test]
    fn deterministic_per_seed() {
        let g = DriftingHotspot::new(cfg());
        let a = g.generate(42);
        let b = g.generate(42);
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            assert_eq!(sa.requests, sb.requests);
        }
        let c = g.generate(43);
        assert!(a
            .steps
            .iter()
            .zip(&c.steps)
            .any(|(x, y)| x.requests != y.requests));
    }

    #[test]
    fn respects_request_count_model() {
        let mut config = cfg();
        config.count = RequestCount::Uniform { lo: 1, hi: 4 };
        let g = DriftingHotspot::new(config);
        let inst = g.generate(1);
        let (lo, hi) = inst.request_bounds();
        assert!(lo >= 1 && hi <= 4);
    }

    #[test]
    fn requests_stay_near_arena() {
        let mut config = cfg();
        config.arena_half_width = 10.0;
        config.spread = 0.1;
        let g = DriftingHotspot::new(config);
        let inst = g.generate(9);
        for step in &inst.steps {
            for v in &step.requests {
                // Center is clamped to the arena; requests scatter at most
                // a few σ beyond.
                assert!(v[0].abs() <= 11.0 && v[1].abs() <= 11.0, "escaped: {v:?}");
            }
        }
    }

    #[test]
    fn hotspot_actually_drifts() {
        let g = DriftingHotspot::new(cfg());
        let inst = g.generate(5);
        let first = inst.steps[0].requests[0];
        let last = inst.steps[inst.horizon() - 1].requests[0];
        assert!(first.distance(&last) > 1.0, "hotspot did not move");
    }

    #[test]
    fn zero_drift_keeps_requests_clustered() {
        let mut config = cfg();
        config.drift_speed = 0.0;
        config.spread = 0.2;
        let g = DriftingHotspot::new(config);
        let inst = g.generate(2);
        for step in &inst.steps {
            for v in &step.requests {
                assert!(v.norm() < 3.0, "request strayed with zero drift: {v:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn rejects_momentum_one() {
        let mut config = cfg();
        config.momentum = 1.0;
        let _ = DriftingHotspot::new(config);
    }

    #[test]
    fn works_in_one_dimension() {
        let config = DriftingHotspotConfig::<1> {
            horizon: 50,
            ..Default::default()
        };
        let g = DriftingHotspot::new(config);
        let inst = g.generate(3);
        assert_eq!(inst.horizon(), 50);
    }
}
