//! Server fleets: the paper's open k-Server question, hands-on.
//!
//! The conclusion asks what happens when movement limits are imposed on
//! the k-Server Problem. This example runs the exploratory fleet substrate
//! on a four-district city: demand fires at all districts simultaneously,
//! and we watch what each extra speed-limited server buys.
//!
//! ```text
//! cargo run --release --example server_fleet
//! ```

use mobile_server::analysis::Table;
use mobile_server::core::fleet::{run_fleet, FleetAlgorithm, GreedyFleet, MtcFleet, SpreadFleet};
use mobile_server::geometry::sample::SeededSampler;
use mobile_server::prelude::*;

fn main() {
    // Four districts on a ring of radius 15; each fires most rounds.
    let mut s = SeededSampler::new(2027);
    let districts: Vec<P2> = (0..4)
        .map(|i| {
            let ang = std::f64::consts::TAU * i as f64 / 4.0;
            P2::xy(15.0 * ang.cos(), 15.0 * ang.sin())
        })
        .collect();
    let mut steps: Vec<Step<2>> = Vec::with_capacity(1500);
    for _ in 0..1500 {
        let mut reqs = Vec::new();
        for c in &districts {
            if s.uniform(0.0, 1.0) < 0.8 {
                reqs.push(s.gaussian_point(c, 0.5));
            }
        }
        steps.push(Step::new(reqs));
    }
    let instance = Instance::new(2.0, 1.0, P2::origin(), steps);
    println!(
        "City with 4 districts, {} rounds, {} requests; D = 2, m = 1\n",
        instance.horizon(),
        instance.total_requests()
    );

    let mut table = Table::new(vec!["k", "policy", "movement", "service", "total"]);
    type Factory = fn() -> Box<dyn FleetAlgorithm<2>>;
    let policies: Vec<(&str, Factory)> = vec![
        ("mtc-fleet", || Box::new(MtcFleet::new())),
        ("greedy-fleet", || Box::new(GreedyFleet)),
        ("spread-fleet", || Box::new(SpreadFleet::new())),
    ];
    for k in [1usize, 2, 4, 8] {
        for (name, factory) in &policies {
            let mut alg = factory();
            let res = run_fleet(&instance, k, &mut alg, 0.0, ServingOrder::MoveFirst);
            table.push_row(vec![
                k.to_string(),
                name.to_string(),
                format!("{:.0}", res.cost.movement),
                format!("{:.0}", res.cost.service),
                format!("{:.0}", res.total_cost()),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "One page cannot be in four places: with k < 4 some district always pays ~15 per request."
    );
    println!(
        "At k = 4 every district gets a resident server and the cost collapses to local noise —"
    );
    println!(
        "whether any policy is *competitive* here is exactly the problem the paper leaves open."
    );
}
