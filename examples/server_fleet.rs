//! Server fleets: the paper's open k-Server question, hands-on.
//!
//! The conclusion asks what happens when movement limits are imposed on
//! the k-Server Problem. This example runs the exploratory fleet substrate
//! on a four-district city: demand fires at all districts simultaneously,
//! and we watch what each extra speed-limited server buys.
//!
//! ```text
//! cargo run --release --example server_fleet
//! ```

use mobile_server::analysis::Table;
use mobile_server::core::fleet::{run_fleet, FleetAlgorithm, GreedyFleet, MtcFleet, SpreadFleet};
use mobile_server::prelude::*;

fn main() {
    // The `ring-districts` registry scenario: four districts on a ring of
    // radius 15, each firing most rounds.
    let spec = lookup("ring-districts").expect("ring-districts is in the registry");
    let mut stream = spec.stream::<2>(2027).expect("2-D scenario");
    let instance = collect_instance(stream.as_mut());
    println!(
        "City with 4 districts (scenario `{}`), {} rounds, {} requests; D = 2, m = 1\n",
        spec.name,
        instance.horizon(),
        instance.total_requests()
    );

    let mut table = Table::new(vec!["k", "policy", "movement", "service", "total"]);
    type Factory = fn() -> Box<dyn FleetAlgorithm<2>>;
    let policies: Vec<(&str, Factory)> = vec![
        ("mtc-fleet", || Box::new(MtcFleet::new())),
        ("greedy-fleet", || Box::new(GreedyFleet)),
        ("spread-fleet", || Box::new(SpreadFleet::new())),
    ];
    for k in [1usize, 2, 4, 8] {
        for (name, factory) in &policies {
            let mut alg = factory();
            let res = run_fleet(&instance, k, &mut alg, 0.0, ServingOrder::MoveFirst);
            table.push_row(vec![
                k.to_string(),
                name.to_string(),
                format!("{:.0}", res.cost.movement),
                format!("{:.0}", res.cost.service),
                format!("{:.0}", res.total_cost()),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "One page cannot be in four places: with k < 4 some district always pays ~15 per request."
    );
    println!(
        "At k = 4 every district gets a resident server and the cost collapses to local noise —"
    );
    println!(
        "whether any policy is *competitive* here is exactly the problem the paper leaves open."
    );
}
