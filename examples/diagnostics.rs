//! Live diagnostics: competitive ratio *over time* against the exact
//! incremental optimum, rendered in the terminal.
//!
//! The exact 1-D solver is naturally online (`IncrementalLineOpt`), so we
//! can watch "how far behind the clairvoyant optimum is MtC right now" as
//! the sequence unfolds — first through a regime change (demand jumps to a
//! far site), then through a runaway phase the augmented budget barely
//! covers.
//!
//! ```text
//! cargo run --release --example diagnostics
//! ```

use mobile_server::analysis::{ascii_chart, Series};
use mobile_server::core::io::write_instance;
use mobile_server::offline::IncrementalLineOpt;
use mobile_server::prelude::*;

fn main() {
    // A three-act workload on the line:
    //   act 1 (steps 0..150):   demand parked at x = 0
    //   act 2 (steps 150..300): demand jumps to x = 40 (regime change)
    //   act 3 (steps 300..500): demand runs right at speed 1.2
    let mut steps = Vec::new();
    for t in 0..500 {
        let x = match t {
            0..=149 => 0.0,
            150..=299 => 40.0,
            _ => 40.0 + 1.2 * (t as f64 - 299.0),
        };
        steps.push(Step::single(P1::new([x])));
    }
    let instance = Instance::new(2.0, 1.0, P1::origin(), steps);
    let delta = 0.3;

    // Run MtC and track the exact optimum incrementally, in lockstep.
    let mut alg = MoveToCenter::new();
    let run = run(&instance, &mut alg, delta, ServingOrder::MoveFirst);
    let mut opt =
        IncrementalLineOpt::new(instance.d, instance.max_move, 0.0, ServingOrder::MoveFirst);

    let mut cumulative_alg = 0.0;
    let mut ratio_series = Vec::new();
    let mut gap_series = Vec::new();
    for (t, step) in instance.iter_steps() {
        cumulative_alg += run.cost.per_step[t].total();
        let reqs: Vec<f64> = step.iter().map(|v| v.x()).collect();
        opt.push_step(&reqs);
        let opt_so_far = opt.current_opt();
        ratio_series.push(if opt_so_far > 1e-9 {
            cumulative_alg / opt_so_far
        } else {
            1.0
        });
        // Distance from the server to the current demand point.
        gap_series.push(run.positions[t + 1].distance(&step[0]));
    }

    println!("Cumulative competitive ratio over time (δ = 0.3, D = 2):\n");
    println!(
        "{}",
        ascii_chart(&[Series::new("ratio", ratio_series.clone())], 72, 12)
    );
    println!("Server-to-demand gap over time:\n");
    println!("{}", ascii_chart(&[Series::new("gap", gap_series)], 72, 10));

    let final_ratio = ratio_series.last().unwrap();
    println!("Final cumulative ratio: {final_ratio:.3}");
    println!("Act 2's jump spikes the ratio (the page is 40 away and crawls over);");
    println!("act 3's 1.2-speed runaway is just inside the 1.3 budget, so the gap re-closes.");

    // The instance itself can be exported for replay elsewhere:
    let text = write_instance(&instance);
    println!(
        "\nInstance exports to {} lines of plain text via core::io::write_instance.",
        text.lines().count()
    );
}
