//! Live diagnostics: competitive ratio *over time* against the exact
//! incremental optimum, computed **while the stream plays** — no
//! materialized run, no stored trajectory.
//!
//! The exact 1-D solver is naturally online (`IncrementalLineOpt`) and so
//! is the simulator (`StreamingSim`), so the `regime-shift-line` registry
//! scenario is consumed step by step: MtC decides, the rolling PWL DP
//! re-prices the clairvoyant optimum, and we watch "how far behind is MtC
//! right now" — first through a regime change (demand jumps to a far
//! site), then through a runaway phase the augmented budget barely covers.
//!
//! ```text
//! cargo run --release --example diagnostics
//! ```

use mobile_server::analysis::{ascii_chart, Series};
use mobile_server::core::simulator::StreamingSim;
use mobile_server::offline::IncrementalLineOpt;
use mobile_server::prelude::*;
use mobile_server::scenarios::record_to_vec;

fn main() {
    // The three-act line workload from the registry:
    //   act 1: demand parked at x = 0
    //   act 2: demand jumps to x = 40 (regime change)
    //   act 3: demand runs right at speed 1.2
    let spec = lookup("regime-shift-line").expect("regime-shift-line is in the registry");
    let mut stream = spec.stream::<1>(0).expect("1-D scenario");
    let params = stream.params();
    let delta = spec.default_delta;

    // Feed MtC and the exact optimum tracker in lockstep, straight off
    // the stream.
    let mut sim = StreamingSim::new(&params, MoveToCenter::new(), delta, ServingOrder::MoveFirst);
    let mut opt = IncrementalLineOpt::new(
        params.d,
        params.max_move,
        params.start.x(),
        ServingOrder::MoveFirst,
    );

    let mut ratio_series = Vec::new();
    let mut gap_series = Vec::new();
    while let Some(step) = stream.next_step() {
        sim.feed(&step);
        let reqs: Vec<f64> = step.requests.iter().map(|v| v.x()).collect();
        opt.push_step(&reqs);
        let opt_so_far = opt.current_opt();
        ratio_series.push(if opt_so_far > 1e-9 {
            sim.total_cost() / opt_so_far
        } else {
            1.0
        });
        // Distance from the server to the current demand point.
        gap_series.push(sim.position().distance(&step.requests[0]));
    }

    println!(
        "Cumulative competitive ratio over time (scenario `{}`, δ = {delta}, D = {}):\n",
        spec.name, params.d
    );
    println!(
        "{}",
        ascii_chart(&[Series::new("ratio", ratio_series.clone())], 72, 12)
    );
    println!("Server-to-demand gap over time:\n");
    println!("{}", ascii_chart(&[Series::new("gap", gap_series)], 72, 10));

    let final_ratio = ratio_series.last().unwrap();
    println!("Final cumulative ratio: {final_ratio:.3}");
    println!("Act 2's jump spikes the ratio (the page is 40 away and crawls over);");
    println!("act 3's 1.2-speed runaway is just inside the 1.3 budget, so the gap re-closes.");

    // The scenario itself can be exported for replay elsewhere:
    let bytes = record_to_vec(stream.as_mut(), TraceFormat::ChunkedV2 { chunk: 128 })
        .expect("recording a registry scenario");
    println!(
        "\nScenario exports to {} bytes of chunked v2 trace (binary: {} bytes).",
        bytes.len(),
        record_to_vec(stream.as_mut(), TraceFormat::Binary)
            .unwrap()
            .len()
    );
}
