//! Live competitive-ratio telemetry for a streaming session.
//!
//! A streaming deployment cannot wait for the horizon to end before
//! asking "how far from optimal are we?". `RatioProbe` maintains an
//! online, certified **lower** bound on the offline optimum of the
//! prefix seen so far, so `alg_cost / lower_bound` is a live *upper*
//! bound on the session's competitive ratio against that prefix. This
//! example runs Move-to-Center over the `walk-plane` scenario with a
//! probe attached, prints the ratio trajectory, and shows the metrics
//! registry observing the whole run.
//!
//! ```text
//! cargo run --release --example live_ratio
//! ```

use mobile_server::analysis::obs;
use mobile_server::core::cost::ServingOrder;
use mobile_server::core::mtc::MoveToCenter;
use mobile_server::offline::probe::{run_streaming_probed, ProbeOptions};
use mobile_server::scenarios::engine::materialize;
use mobile_server::scenarios::registry::{must_lookup, ScenarioKnobs};

fn main() {
    obs::enable();
    let before = obs::snapshot();

    let spec = must_lookup("walk-plane");
    let inst = materialize::<2>(&spec, 42, &ScenarioKnobs::horizon(256)).unwrap();
    let params = inst.params();
    println!(
        "Scenario `{}`: {} steps, D = {}, m = {}\n",
        spec.name,
        inst.horizon(),
        inst.d,
        inst.max_move
    );

    // Drive the session and the probe in lockstep, sampling every 32
    // steps. The probe only reads the request stream — the session's
    // totals are bit-equal to an unprobed run.
    let (result, samples) = run_streaming_probed(
        &params,
        inst.steps.iter().cloned(),
        MoveToCenter::<2>::new(),
        0.2,
        ServingOrder::MoveFirst,
        ProbeOptions::default(),
        32,
    );

    println!("  step | alg cost | OPT lower bound | ratio ≤");
    println!("  -----+----------+-----------------+--------");
    for s in &samples {
        match s.ratio() {
            Some(r) => println!(
                "  {:4} | {:8.1} | {:15.1} | {:6.2}",
                s.step, s.alg_cost, s.lower_bound, r
            ),
            None => println!(
                "  {:4} | {:8.1} | {:>15} |      —",
                s.step, s.alg_cost, "0.0"
            ),
        }
    }

    let last = samples.last().expect("sampled at least once");
    println!(
        "\nFinal: cost {:.1} against a certified OPT lower bound of {:.1} —",
        result.total_cost(),
        last.lower_bound
    );
    println!(
        "this session was provably within {:.2}× of the offline optimum.",
        last.ratio().expect("nonzero bound on a nontrivial run")
    );

    // The registry watched everything: the session, its blocks, and
    // every probe sample, with no timestamps and monotone counters.
    let after = obs::snapshot();
    assert!(after.dominates(&before));
    let delta = |name: &str| after.counter(name).unwrap() - before.counter(name).unwrap();
    println!("\nRegistry deltas for this run:");
    for name in [
        "stream.sessions",
        "stream.steps",
        "probe.blocks",
        "probe.grid_bounds",
    ] {
        println!("  {:18} {}", name, delta(name));
    }
}
