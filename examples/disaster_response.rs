//! Disaster-response scenario: the Moving-Client variant (Section 5).
//!
//! Helpers form an ad-hoc network; a mobile signal station (the server)
//! should follow the search party (the agent) around. The paper proves a
//! sharp dichotomy: if the server is at least as fast as the agent, simple
//! chasing is O(1)-competitive (Theorem 10); if the agent is faster, no
//! algorithm is competitive without augmentation (Theorem 8).
//!
//! ```text
//! cargo run --release --example disaster_response
//! ```

use mobile_server::core::simulator::run;
use mobile_server::prelude::*;

fn main() {
    let horizon = 2_000;
    let knobs = ScenarioKnobs::horizon(horizon);
    let d = 2.0;

    println!("Moving-Client variant: a signal station follows a search party\n");

    // Regime 1 (Theorem 10): equal speeds, no augmentation needed — the
    // `disaster-waypoint` registry scenario.
    let mc = lookup("disaster-waypoint")
        .expect("disaster-waypoint is in the registry")
        .moving_client::<2>(7, &knobs)
        .expect("moving-client scenario");
    let inst = mc.to_instance();
    let mut mtc = MoveToCenter::new();
    let res = run(&inst, &mut mtc, 0.0, ServingOrder::MoveFirst);
    // Gap between station and party over time.
    let max_gap = mc
        .agent
        .positions()
        .iter()
        .enumerate()
        .map(|(t, a)| res.positions[t + 1].distance(a))
        .fold(0.0f64, f64::max);
    println!("Equal speeds (m_s = m_a = 1.0), search party on random waypoints:");
    println!("  total cost        : {:.0}", res.total_cost());
    println!(
        "  max station-party gap: {:.2} (Theorem 10 guarantees ≤ D·m = {:.1})",
        max_gap,
        d * 1.0
    );

    // Regime 2 (Theorem 8): the party outruns the station (1.5× faster) —
    // the `disaster-runaway` scenario.
    let mc_fast = lookup("disaster-runaway")
        .expect("disaster-runaway is in the registry")
        .moving_client::<2>(11, &knobs)
        .expect("moving-client scenario");
    let inst_fast = mc_fast.to_instance();
    let res_fast = run(&inst_fast, &mut mtc, 0.0, ServingOrder::MoveFirst);
    let final_gap = res_fast.positions[horizon].distance(&mc_fast.agent.positions()[horizon - 1]);
    println!("\nFast party (m_a = 1.5 > m_s = 1.0), worst-case straight escape:");
    println!("  total cost        : {:.0}", res_fast.total_cost());
    println!(
        "  final gap         : {:.0} — the station falls behind forever (Theorem 8)",
        final_gap
    );

    // Regime 3 (Corollary 9): augmentation rescues the chase.
    let res_aug = run(&inst_fast, &mut mtc, 0.6, ServingOrder::MoveFirst);
    let final_gap_aug =
        res_aug.positions[horizon].distance(&mc_fast.agent.positions()[horizon - 1]);
    println!("\nSame fast party, station augmented to (1+0.6)·m_s = 1.6 > m_a:");
    println!("  total cost        : {:.0}", res_aug.total_cost());
    println!(
        "  final gap         : {:.2} — augmentation restores a bounded ratio (Corollary 9)",
        final_gap_aug
    );
}
