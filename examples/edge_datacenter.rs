//! Edge-computing scenario: a data page follows a drifting crowd.
//!
//! The paper's introduction motivates the model with edge computing —
//! computation moving back towards mobile users. The `edge-drift`
//! scenario from the registry plays a demand hotspot (a crowd of devices)
//! drifting through a city-sized arena; the mobile server holds the page
//! they read. We compare every algorithm in the suite and sweep the
//! resource-augmentation factor δ to show the price of a movement budget.
//!
//! ```text
//! cargo run --release --example edge_datacenter
//! ```

use mobile_server::analysis::Table;
use mobile_server::core::algorithm::BoxedAlgorithm;
use mobile_server::core::baselines::MoveToMinN;
use mobile_server::prelude::*;

fn main() {
    let spec = lookup("edge-drift").expect("edge-drift is in the registry");
    let mut stream = spec.stream::<2>(2024).expect("2-D scenario");
    let instance = collect_instance(stream.as_mut());
    println!(
        "Edge data-center workload (scenario `{}`): {} rounds, {} requests, hotspot speed 0.7 vs server speed 1.0\n",
        spec.name,
        instance.horizon(),
        instance.total_requests()
    );

    // All algorithms at δ = 0.25.
    type Factory = fn() -> BoxedAlgorithm<2>;
    let algs: Vec<(&str, Factory)> = vec![
        ("move-to-center (paper)", || Box::new(MoveToCenter::new())),
        ("lazy", || Box::new(Lazy)),
        ("follow-center", || Box::new(FollowCenter::new())),
        ("move-to-min", || Box::new(MoveToMinN::<2>::new())),
        ("coin-flip", || Box::new(RandomizedCoinFlip::<2>::new(7))),
    ];
    let mut table = Table::new(vec!["algorithm", "movement", "service", "total"]);
    let mut best = f64::INFINITY;
    for (name, factory) in &algs {
        let mut alg = factory();
        let res = run(&instance, &mut alg, 0.25, ServingOrder::MoveFirst);
        best = best.min(res.total_cost());
        table.push_row(vec![
            name.to_string(),
            format!("{:.0}", res.cost.movement),
            format!("{:.0}", res.cost.service),
            format!("{:.0}", res.total_cost()),
        ]);
    }
    println!("{}", table.to_markdown());

    // δ sweep for MtC: how much does extra speed buy?
    let mut sweep = Table::new(vec!["δ", "MtC total cost", "vs δ=0"]);
    let mut base = 0.0;
    for (i, delta) in [0.0, 0.1, 0.25, 0.5, 1.0].into_iter().enumerate() {
        let mut alg = MoveToCenter::new();
        let res = run(&instance, &mut alg, delta, ServingOrder::MoveFirst);
        if i == 0 {
            base = res.total_cost();
        }
        sweep.push_row(vec![
            format!("{delta:.2}"),
            format!("{:.0}", res.total_cost()),
            format!("{:.2}×", res.total_cost() / base),
        ]);
    }
    println!(
        "Resource augmentation sweep (Move-to-Center):\n{}",
        sweep.to_markdown()
    );
    println!("Augmentation matters when the crowd is fast; against a 0.7-speed hotspot even δ=0 tracks well.");
}
