//! Production-scale streaming: 1.5 million steps, memory independent of
//! the horizon, with periodic checkpoints and an exact resume.
//!
//! The classic simulator materializes the instance and the full position
//! trace — at T = 1.5M in 2-D that is hundreds of MB. The streaming path
//! pulls steps straight off the generator and keeps running totals only:
//! the live state is one `StreamingSim` (a few hundred bytes) plus the
//! generator's O(1) internals, no matter how long the run.
//!
//! The run checkpoints every 500k steps; afterwards we resume from the
//! 1M checkpoint with the warm algorithm, replay only the tail, and
//! verify the totals agree with the uninterrupted run bit for bit.
//!
//! ```text
//! cargo run --release --example streaming_horizon
//! ```

use mobile_server::core::simulator::{StreamCheckpoint, StreamingSim};
use mobile_server::prelude::*;
use std::time::Instant;

const HORIZON: usize = 1_500_000;
const CHECKPOINT_EVERY: usize = 500_000;

fn main() {
    let spec = lookup("walk-plane").expect("walk-plane is in the registry");
    let knobs = ScenarioKnobs::horizon(HORIZON);
    let delta = spec.default_delta;

    println!(
        "Streaming `{}` for {HORIZON} steps (checkpoint every {CHECKPOINT_EVERY})\n",
        spec.name
    );

    // Uninterrupted streaming run, snapshotting checkpoints as it goes.
    let mut stream = spec.stream_with::<2>(42, &knobs).expect("2-D scenario");
    let start = Instant::now();
    let mut sim = StreamingSim::new(
        &stream.params(),
        MoveToCenter::new(),
        delta,
        ServingOrder::MoveFirst,
    );
    let mut saved: Option<(StreamCheckpoint<2>, MoveToCenter<2>)> = None;
    while let Some(step) = stream.next_step() {
        sim.feed(&step);
        if sim.steps() % CHECKPOINT_EVERY == 0 && sim.steps() < HORIZON {
            let cp = sim.checkpoint();
            println!(
                "  checkpoint @ {:>9}: position {}, cost so far {:.0}",
                cp.step,
                cp.position,
                cp.movement + cp.service
            );
            // Persisting the warm algorithm alongside the snapshot is what
            // makes the resume decision-exact.
            saved = Some((cp, sim.algorithm().clone()));
        }
    }
    let full = sim.finish();
    let elapsed = start.elapsed();
    println!(
        "\nFull run: {} steps in {:.2}s ({:.1}M steps/s)",
        full.steps,
        elapsed.as_secs_f64(),
        full.steps as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "  total cost {:.0} (movement {:.0} + service {:.0}), max step used {:.3}",
        full.total_cost(),
        full.movement,
        full.service,
        full.max_step_used
    );
    println!(
        "  live state: {} bytes of StreamingSim — independent of T",
        std::mem::size_of::<StreamingSim<2, MoveToCenter<2>>>()
    );

    // Resume from the last checkpoint and replay only the tail.
    let (cp, warm) = saved.expect("at least one checkpoint fired");
    println!("\nResuming from the {}-step checkpoint …", cp.step);
    stream.rewind();
    for _ in 0..cp.step {
        stream.next_step().expect("skipping replayed prefix");
    }
    let mut resumed =
        StreamingSim::resume(&stream.params(), warm, delta, ServingOrder::MoveFirst, &cp);
    while let Some(step) = stream.next_step() {
        resumed.feed(&step);
    }
    let tail = resumed.finish();
    assert_eq!(tail.steps, full.steps);
    assert_eq!(tail.movement.to_bits(), full.movement.to_bits());
    assert_eq!(tail.service.to_bits(), full.service.to_bits());
    assert_eq!(tail.final_position, full.final_position);
    println!(
        "Resumed run reproduced the full totals bit-exactly: cost {:.0}, final position {}",
        tail.total_cost(),
        tail.final_position
    );
}
