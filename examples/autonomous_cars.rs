//! Autonomous-car scenario: a fleet of vehicles sharing one data page.
//!
//! The paper's second motivating example: embedded systems in autonomous
//! cars coordinate through shared data. A fleet of cars drives through an
//! arena (random-waypoint mobility); each round a random subset requests
//! the page. We run Move-to-Center and report how the cost decomposes and
//! how far the page lags behind the fleet's centroid.
//!
//! ```text
//! cargo run --release --example autonomous_cars
//! ```

use mobile_server::analysis::Summary;
use mobile_server::geometry::median::centroid;
use mobile_server::prelude::*;

fn main() {
    // The `car-fleet` registry scenario: 12 cars on random waypoints and
    // a heavy page (D = 8 — movement is expensive).
    let spec = lookup("car-fleet").expect("car-fleet is in the registry");
    let mut stream = spec.stream::<2>(99).expect("2-D scenario");
    let instance = collect_instance(stream.as_mut());
    let (r_min, r_max) = instance.request_bounds();
    println!(
        "Fleet workload (scenario `{}`): 12 cars, {} rounds, {} requests (per-step {}..{})\n",
        spec.name,
        instance.horizon(),
        instance.total_requests(),
        r_min,
        r_max
    );

    let mut mtc = MoveToCenter::new();
    let res = run(&instance, &mut mtc, 0.25, ServingOrder::MoveFirst);
    println!("Move-to-Center, δ = 0.25:");
    println!("  movement cost : {:.0}", res.cost.movement);
    println!("  service cost  : {:.0}", res.cost.service);
    println!("  total         : {:.0}", res.total_cost());

    // How far does the page trail the momentary request centroid?
    let mut lags = Vec::new();
    for (t, step) in instance.iter_steps() {
        if !step.is_empty() {
            let c = centroid(step);
            lags.push(res.positions[t + 1].distance(&c));
        }
    }
    let s = Summary::of(&lags);
    println!(
        "  page-to-centroid lag: mean {:.2}, median {:.2}, p95 {:.2}, max {:.2}",
        s.mean,
        s.median,
        Summary::quantile(&lags, 0.95),
        s.max
    );

    // Answer-First comparison: what if cars must be answered before the
    // page moves (Theorem 3 territory)?
    let af = run(&instance, &mut mtc, 0.25, ServingOrder::AnswerFirst);
    println!(
        "\nAnswer-First pricing on the same decisions: {:.0} ({:+.1}% vs Move-First)",
        af.total_cost(),
        100.0 * (af.total_cost() / res.total_cost() - 1.0)
    );
    println!("With bursty fleets (r up to 12 ≥ D = 8) the Answer-First penalty is the r/D effect of Theorem 3.");
}
