//! Quickstart: define an instance, run Move-to-Center, inspect the costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mobile_server::prelude::*;

fn main() {
    // A demand source drifting to the right at half the server's speed,
    // with two co-located requests per round.
    let horizon = 200;
    let steps: Vec<Step<2>> = (0..horizon)
        .map(|t| Step::repeated(P2::xy(0.5 * t as f64, 2.0), 2))
        .collect();

    // D = 4 (moving a unit of distance costs four times serving one),
    // m = 1 (the server moves at most one unit per round).
    let instance = Instance::new(4.0, 1.0, P2::origin(), steps);

    // The paper's algorithm with 25% resource augmentation.
    let mut mtc = MoveToCenter::new();
    let result = run(&instance, &mut mtc, 0.25, ServingOrder::MoveFirst);

    println!("Move-to-Center on a drifting workload");
    println!("  horizon           : {} rounds", instance.horizon());
    println!("  movement cost     : {:.2}", result.cost.movement);
    println!("  service cost      : {:.2}", result.cost.service);
    println!("  total cost        : {:.2}", result.total_cost());
    println!("  final position    : {}", result.positions[horizon]);
    println!(
        "  max step used     : {:.3} (budget {:.3})",
        result.max_step_used(),
        (1.0 + result.delta) * instance.max_move
    );

    // Compare against never moving at all.
    let mut lazy = Lazy;
    let lazy_cost = run(&instance, &mut lazy, 0.25, ServingOrder::MoveFirst).total_cost();
    println!(
        "  vs Lazy (never move): {:.2} — MtC is {:.1}× cheaper",
        lazy_cost,
        lazy_cost / result.total_cost()
    );

    // The same, but from the scenario registry: every named workload in
    // the catalog opens as a replayable stream and runs with O(1) memory.
    let spec = lookup("edge-drift").expect("edge-drift is in the registry");
    let mut stream = spec
        .stream_with::<2>(7, &ScenarioKnobs::horizon(500))
        .expect("2-D scenario");
    let streamed = run_stream(
        stream.as_mut(),
        MoveToCenter::new(),
        spec.default_delta,
        ServingOrder::MoveFirst,
    );
    println!(
        "\nScenario registry ({} named scenarios):",
        registry().len()
    );
    println!(
        "  `{}` streamed for {} steps: total cost {:.2}, final position {}",
        spec.name,
        streamed.steps,
        streamed.total_cost(),
        streamed.final_position
    );
}
