//! The augmentation / competitiveness trade-off, measured against the
//! exact offline optimum.
//!
//! This is the library's headline capability for a systems user: given a
//! workload and a movement budget, how much extra server speed buys how
//! much worst-case performance? We sweep the δ knob of the `adv-thm2`
//! registry scenario (the paper's Theorem 2 adversary) and price
//! everything with the exact 1-D solver.
//!
//! ```text
//! cargo run --release --example competitive_tradeoff
//! ```

use mobile_server::analysis::{fit_power_law, Table};
use mobile_server::core::simulator::run;
use mobile_server::offline::solve_line;
use mobile_server::prelude::*;

fn main() {
    println!("Competitive ratio vs augmentation δ (scenario `adv-thm2`, exact OPT)\n");
    let spec = lookup("adv-thm2").expect("adv-thm2 is in the registry");

    let mut table = Table::new(vec![
        "δ",
        "MtC cost",
        "exact OPT",
        "ratio",
        "paper bound O(1/δ)",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for delta in [0.05, 0.1, 0.2, 0.4, 0.8] {
        // Average over the adversary's coin flips; the δ knob resizes the
        // construction's chase phases.
        let knobs = ScenarioKnobs::delta(delta);
        let mut cost_acc = 0.0;
        let mut opt_acc = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let mut stream = spec.stream_with::<1>(seed, &knobs).expect("1-D scenario");
            let instance = collect_instance(stream.as_mut());
            let mut alg = MoveToCenter::new();
            cost_acc += run(&instance, &mut alg, delta, ServingOrder::MoveFirst).total_cost();
            opt_acc += solve_line(&instance, ServingOrder::MoveFirst).cost;
        }
        let ratio = cost_acc / opt_acc;
        table.push_row(vec![
            format!("{delta:.2}"),
            format!("{:.0}", cost_acc / runs as f64),
            format!("{:.0}", opt_acc / runs as f64),
            format!("{ratio:.2}"),
            format!("{:.1}", 1.0 / delta),
        ]);
        xs.push(delta);
        ys.push(ratio);
    }
    println!("{}", table.to_markdown());

    let fit = fit_power_law(&xs, &ys);
    println!(
        "Fitted scaling: ratio ≈ {:.2}·δ^{:.2}  (R² = {:.3})",
        fit.prefactor, fit.exponent, fit.r_squared
    );
    println!("Theorem 4 (line): O(1/δ) — exponent −1 is the worst possible; Theorem 2: Ω(1/δ) — it is also necessary.");
    println!("\nRule of thumb for deployments: doubling the server's speed headroom roughly halves the worst-case overhead.");
}
