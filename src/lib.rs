#![warn(missing_docs)]

//! # mobile-server
//!
//! A complete reproduction of **“The Mobile Server Problem”** (Björn
//! Feldkord and Friedhelm Meyer auf der Heide, SPAA 2017 / arXiv
//! 1904.05220): a speed-limited mobile server holds a data page in
//! Euclidean space; requests arrive each round and are served at their
//! distance to the server; moving costs `D` per unit distance, at most `m`
//! per round.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] (`msp-core`) — the model, cost accounting, the
//!   **Move-to-Center** algorithm, baselines, the simulator, and the
//!   Moving-Client variant.
//! * [`geometry`] (`msp-geometry`) — points, medians, KD-tree, sampling.
//! * [`offline`] (`msp-offline`) — exact 1-D and near-exact N-D offline
//!   optimum solvers.
//! * [`adversary`] (`msp-adversary`) — the lower-bound constructions of
//!   Theorems 1, 2, 3 and 8 with offline-cost certificates.
//! * [`workloads`] (`msp-workloads`) — seeded synthetic workloads.
//! * [`scenarios`] (`msp-scenarios`) — the streaming scenario engine:
//!   named scenario registry, replayable request streams, durable trace
//!   record/replay, bounded-memory runs.
//! * [`analysis`] (`msp-analysis`) — statistics, fits, tables, parallel
//!   sweeps.
//!
//! ## Quickstart
//!
//! ```rust
//! use mobile_server::prelude::*;
//!
//! // A stream of requests drifting to the right on the plane.
//! let steps: Vec<Step<2>> = (0..100)
//!     .map(|t| Step::single(P2::xy(0.1 * t as f64, 1.0)))
//!     .collect();
//! let instance = Instance::new(4.0, 1.0, P2::origin(), steps);
//!
//! // Run the paper's algorithm with 10% resource augmentation.
//! let mut alg = MoveToCenter::new();
//! let result = run(&instance, &mut alg, 0.1, ServingOrder::MoveFirst);
//! assert!(result.total_cost() > 0.0);
//! ```

pub use msp_adversary as adversary;
pub use msp_analysis as analysis;
pub use msp_core as core;
pub use msp_geometry as geometry;
pub use msp_offline as offline;
pub use msp_scenarios as scenarios;
pub use msp_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use msp_adversary::{
        build_thm1, build_thm2, build_thm3, build_thm8, Certificate, Thm1Params, Thm2Params,
        Thm3Params, Thm8Params,
    };
    pub use msp_analysis::{fit_power_law, Summary, Table};
    pub use msp_core::cost::ServingOrder;
    pub use msp_core::prelude::*;
    pub use msp_geometry::{Point, P1, P2, P3};
    pub use msp_offline::{solve_line, ConvexSolver};
    pub use msp_scenarios::{
        collect_instance, lookup, registry, run_stream, RequestStream, ScenarioKnobs, ScenarioSpec,
        TraceFormat,
    };
    pub use msp_workloads::{
        AgentFleet, AgentFleetConfig, ClusterMixture, ClusterMixtureConfig, DriftingHotspot,
        DriftingHotspotConfig, RandomWalk, RandomWalkConfig, RequestCount,
    };
}
