#![warn(missing_docs)]

//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no network access, so instead of the real
//! `rand` crate we vendor a tiny, deterministic replacement: a
//! SplitMix64-seeded xoshiro256++ generator behind the familiar
//! `StdRng` / [`Rng`] / [`SeedableRng`] names. Streams are platform-stable
//! and fully determined by the seed, which is all the reproduction needs —
//! every stochastic component records its seed.
//!
//! Only the methods actually called in this workspace are provided:
//! `seed_from_u64`, `gen`, `gen_range` (half-open and inclusive ranges),
//! and `gen_bool`.

use std::ops::{Range, RangeInclusive};

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A seedable, portable pseudo-random generator (xoshiro256++ seeded
    /// via SplitMix64). Not cryptographically secure — and not meant to be.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding interface, mirroring `rand::SeedableRng` for the one entry
/// point the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state;
        // the recommended seeding procedure for the xoshiro family.
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Raw 64-bit output, mirroring `rand::RngCore`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn from the "standard" distribution (`gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges a uniform value can be drawn from (`gen_range`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire rejection).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32);

macro_rules! signed_int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

signed_int_range_impls!(i64, i32, isize);

/// Convenience methods, mirroring `rand::Rng`. Blanket-implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T` (uniform bits; `[0, 1)`
    /// for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let x = r.gen_range(5u64..8);
            assert!((5..8).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
