#![warn(missing_docs)]

//! Offline shim for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no network access, so `cargo bench` runs on
//! this small vendored harness instead of the real Criterion. It keeps the
//! same source-level API — `Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!` — so the bench files compile unchanged.
//!
//! Measurement model: each benchmark runs a dedicated warm-up phase
//! (~20 ms of repeated calls, so caches and branch predictors settle and
//! the batch size is estimated from warmed timings), then is timed over
//! `sample_size` samples of an adaptively chosen iteration batch
//! (targeting a few milliseconds per sample). The top and bottom 20% of
//! samples are discarded and the **trimmed mean** per-iteration time is
//! reported on stdout as `<name>  time: <t>` — scheduler blips and
//! one-off stalls fall into the trimmed tails instead of the reported
//! number, so CI-to-CI deltas are comparatively stable. There are no
//! HTML reports or statistical regressions — this harness exists so
//! benches run and emit stable machine-greppable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Units-of-work annotation for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How long the dedicated warm-up phase runs before any sample is timed.
const WARMUP_TARGET: Duration = Duration::from_millis(20);

/// Per-sample timing target for batch sizing.
const SAMPLE_TARGET: Duration = Duration::from_millis(2);

/// Mean of the middle 60% of sorted samples (top and bottom 20% trimmed).
/// Falls back to the plain mean when there are too few samples to trim.
fn trimmed_mean(sorted: &[Duration]) -> Duration {
    debug_assert!(!sorted.is_empty());
    let trim = sorted.len() / 5;
    let kept = &sorted[trim..sorted.len() - trim];
    let total: u128 = kept.iter().map(Duration::as_nanos).sum();
    Duration::from_nanos((total / kept.len() as u128) as u64)
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Trimmed-mean per-iteration time of the last `iter` call.
    last_measure: Duration,
}

impl Bencher {
    /// Times `routine`, reporting the outlier-trimmed mean per-iteration
    /// wall-clock time after a dedicated warm-up phase.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run repeatedly for ~20 ms (at least once) so caches
        // and branch predictors settle; the fastest warmed iteration
        // drives the batch sizing below.
        let warmup_start = Instant::now();
        let mut fastest = Duration::MAX;
        loop {
            let s = Instant::now();
            black_box(routine());
            fastest = fastest.min(s.elapsed());
            if warmup_start.elapsed() >= WARMUP_TARGET {
                break;
            }
        }

        // Batch sizing: target ~2 ms per sample so fast routines are
        // batched enough for the clock to resolve them.
        let batch = if fastest >= SAMPLE_TARGET {
            1
        } else {
            let per_iter = fastest.max(Duration::from_nanos(5));
            (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as usize
        };

        let samples = self.sample_size.max(5);
        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed() / batch as u32);
        }
        per_iter.sort();
        self.last_measure = trimmed_mean(&per_iter);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    full_name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        last_measure: Duration::ZERO,
    };
    f(&mut b);
    let mut line = format!(
        "{full_name:<60} time: {:>12}",
        format_duration(b.last_measure)
    );
    if let Some(tp) = throughput {
        let secs = b.last_measure.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("   thrpt: {:.0} elem/s", n as f64 / secs));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("   thrpt: {:.0} B/s", n as f64 / secs));
            }
        }
    }
    println!("{line}");
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style, as
    /// used in `criterion_group!` config expressions).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: std::marker::PhantomData,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks a single named routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Benchmarks a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.label, self.sample_size, None, |b| f(b, input));
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates the per-iteration units of work for throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a named routine within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<GroupBenchId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks a routine parameterized by `input` within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<GroupBenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark label within a group; converted from strings or
/// [`BenchmarkId`]s.
pub struct GroupBenchId(String);

impl From<&str> for GroupBenchId {
    fn from(s: &str) -> Self {
        GroupBenchId(s.to_string())
    }
}

impl From<String> for GroupBenchId {
    fn from(s: String) -> Self {
        GroupBenchId(s)
    }
}

impl From<BenchmarkId> for GroupBenchId {
    fn from(id: BenchmarkId) -> Self {
        GroupBenchId(id.label)
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!` (both the plain and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin_small", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
    }

    criterion_group!(smoke, spin);

    #[test]
    fn harness_runs_and_times() {
        smoke();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("mtc").label, "mtc");
    }

    #[test]
    fn trimmed_mean_discards_outlier_tails() {
        // 10 samples → trim 2 from each end; the 1 ns and 1 s outliers
        // must not move the reported time.
        let mut samples: Vec<Duration> = vec![Duration::from_micros(10); 6];
        samples.extend([Duration::from_nanos(1), Duration::from_nanos(2)]);
        samples.extend([Duration::from_secs(1), Duration::from_secs(2)]);
        samples.sort();
        assert_eq!(trimmed_mean(&samples), Duration::from_micros(10));
    }

    #[test]
    fn trimmed_mean_of_tiny_samples_is_plain_mean() {
        let samples = vec![Duration::from_nanos(100), Duration::from_nanos(300)];
        assert_eq!(trimmed_mean(&samples), Duration::from_nanos(200));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(15)).contains("µs"));
        assert!(format_duration(Duration::from_millis(15)).contains("ms"));
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(1), &5u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
