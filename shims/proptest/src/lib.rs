//! Offline shim for the subset of the `proptest` crate this workspace uses.
//!
//! The build environment has no network access, so the property tests run
//! on a small vendored harness instead of the real `proptest`. The shim
//! keeps the same source-level API — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `Strategy`, `prop::collection::vec`, `any::<T>()`,
//! `ProptestConfig::with_cases` — so the test files compile unchanged.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering; rerunning is deterministic (the RNG is seeded from
//!   the test name), so failures reproduce exactly.
//! * **Strategies are plain generators**: a [`strategy::Strategy`] is just
//!   a seeded sampler of `Value`s.

pub mod test_runner {
    //! Deterministic case generation.

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Seeds the case RNG for a named test. Deterministic across runs and
    /// platforms so failures reproduce.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Runner configuration (`cases` is the only knob the shim honors).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A seeded generator of test inputs.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64, i32, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, moderate magnitudes: the workspace's properties are
            // about geometry, not float-edge-case torture.
            rng.gen_range(-1.0e6..1.0e6)
        }
    }

    /// The canonical strategy for `T` (full domain for ints/bools, finite
    /// moderate range for floats).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Sizes a collection strategy accepts: a fixed count or a half-open
    /// range, mirroring proptest's `Into<SizeRange>` arguments.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// expands to a normal `#[test]` that checks the body over `cases`
/// generated inputs (no shrinking; the failing inputs are printed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            // Evaluate each strategy once, then draw `cases` inputs from it.
            let strategies = ($(($strat),)*);
            #[allow(non_snake_case)]
            let ($(ref $arg,)*) = strategies;
            let _ = &strategies;
            for __case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate($arg, &mut rng);)*
                let __case_desc = format!(
                    concat!("case {}:", $(" ", stringify!($arg), " = {:?}",)*),
                    __case $(, &$arg)*
                );
                let run = || { $body };
                if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!("proptest failure in {}: {}", stringify!($name), __case_desc);
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

/// Skips the current case when the assumption does not hold. In the shim
/// this is an early return from the case body (skipped cases still count
/// towards `cases` — there is no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// `assert!` that reports through the proptest harness (no shrinking in
/// the shim — it panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn prop_map_applies(y in (0.0f64..1.0).prop_map(|x| x + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }

        #[test]
        fn tuples_and_any(t in (0.0f64..1.0, 1usize..4), seed in any::<u64>()) {
            let _ = seed;
            prop_assert!(t.0 < 1.0 && t.1 < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        use crate::strategy::Strategy;
        let s = 0.0f64..1.0;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
